// Package router is the thin HTTP front that turns N neofog-serve
// daemons into one sharded cluster. It consistent-hashes each request's
// canonical content address (the same neofog.ConfigHash-derived key the
// shards use for their caches) onto a shard and forwards the exchange
// verbatim — submit, job, result, SSE stream, cancel — so a client
// cannot tell a routed cluster from a single daemon. Because job IDs
// embed the key's first 16 hex digits, ID-addressed requests route to
// the same shard the submission landed on, and because the hash ring is
// deterministic, every resubmission of a configuration lands on the
// shard that already holds (or is already computing) its result: the
// cluster's caches stay as coherent as one daemon's.
//
// The binary wire transport fans through with the same affinity: the
// router decodes the submission frame just far enough to recover the
// canonical key, then forwards the frame verbatim. Batch matrices route
// as one unit by their matrix key (a hash over every cell key) and
// stream cell completions through unbuffered, like SSE.
//
// Failure handling mirrors the serve layer's: shards are probed via
// /readyz on an interval, a transport error marks a shard degraded on
// the spot, and degraded shards are skipped in ring order — submissions
// retry on the next replica (sound: submission is idempotent by content
// address), ID reads surface the surviving shards' answer (a 404 from
// the successor tells the retrying client to resubmit, which converges
// by idempotency). /metrics aggregates the shards' counters and
// histograms with the router's own; /healthz fans in every shard's
// health body.
package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"neofog/internal/serve"
	"neofog/internal/version"
	"neofog/internal/wire"
)

// shardHeader names the shard that served a routed response — a debug
// aid and the affinity tests' observable.
const shardHeader = "X-Neofog-Shard"

// Shard is one backend daemon.
type Shard struct {
	// Name keys the shard's ring points; it must be unique and stable
	// (renaming a shard moves its keyspace arc).
	Name string
	// URL is the shard's base URL, e.g. "http://127.0.0.1:8081".
	URL string
}

// Config tunes a Router. Shards is required; everything else defaults.
type Config struct {
	Shards []Shard
	// Replicas is the virtual-node count per shard on the hash ring
	// (default 64). More replicas smooth the load split; the mapping
	// changes with this value, so pick once per cluster.
	Replicas int
	// ProbeInterval paces the background /readyz health sweep (default
	// 2s; negative disables the prober — tests drive Probe directly).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one shard health check (default 2s).
	ProbeTimeout time.Duration
	// Client is the forwarding HTTP client (default: a dedicated client
	// with no overall timeout, since SSE streams are long-lived).
	Client *http.Client
	// ErrorLog, when non-nil, receives shard health transitions and
	// forwarding failures.
	ErrorLog *log.Logger
	// Clock injects time for latency metrics (default time.Now).
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Router is the sharded front. Create with New, mount Handler, Close to
// stop the health prober.
type Router struct {
	cfg     Config
	ring    *ring
	healthy []atomic.Bool
	metrics *routerMetrics
	stop    chan struct{}
	stopped chan struct{}
}

// New validates the topology and starts the health prober. Shards start
// healthy (optimistically — routing must work before the first sweep);
// transport errors and probes converge the view.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("router: no shards configured")
	}
	names := make([]string, len(cfg.Shards))
	seen := map[string]bool{}
	for i, s := range cfg.Shards {
		if s.Name == "" || s.URL == "" {
			return nil, fmt.Errorf("router: shard %d needs both a name and a URL", i)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("router: duplicate shard name %q", s.Name)
		}
		seen[s.Name] = true
		if _, err := url.Parse(s.URL); err != nil {
			return nil, fmt.Errorf("router: shard %q: bad URL: %v", s.Name, err)
		}
		names[i] = s.Name
	}
	rt := &Router{
		cfg:     cfg,
		ring:    newRing(names, cfg.Replicas),
		healthy: make([]atomic.Bool, len(cfg.Shards)),
		metrics: newRouterMetrics(),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	for i := range rt.healthy {
		rt.healthy[i].Store(true)
	}
	go rt.probeLoop()
	return rt, nil
}

// Close stops the background prober. Idempotent is not needed; call once.
func (rt *Router) Close() {
	close(rt.stop)
	<-rt.stopped
}

func (rt *Router) probeLoop() {
	defer close(rt.stopped)
	if rt.cfg.ProbeInterval < 0 {
		return
	}
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			rt.Probe()
		case <-rt.stop:
			return
		}
	}
}

// Probe runs one synchronous health sweep: every shard's /readyz, with
// the configured timeout. A 200 marks the shard healthy again (this is
// how a restarted or recovered shard rejoins the ring); anything else —
// including "can't connect" — marks it degraded. Exported so tests and
// operators can force a sweep.
func (rt *Router) Probe() {
	for i := range rt.cfg.Shards {
		ok := rt.probeShard(i)
		was := rt.healthy[i].Swap(ok)
		if was != ok {
			rt.metrics.inc("shard_health_transitions_total", 1)
			if rt.cfg.ErrorLog != nil {
				state := "healthy"
				if !ok {
					state = "degraded"
				}
				rt.cfg.ErrorLog.Printf("router: shard %s now %s", rt.cfg.Shards[i].Name, state)
			}
		}
	}
}

func (rt *Router) probeShard(i int) bool {
	req, err := http.NewRequest(http.MethodGet, rt.cfg.Shards[i].URL+"/readyz", nil)
	if err != nil {
		return false
	}
	client := *rt.cfg.Client
	client.Timeout = rt.cfg.ProbeTimeout
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// markDegraded records an observed transport failure against a shard;
// the prober restores it once /readyz answers again.
func (rt *Router) markDegraded(i int, err error) {
	if rt.healthy[i].Swap(false) {
		rt.metrics.inc("shard_health_transitions_total", 1)
		if rt.cfg.ErrorLog != nil {
			rt.cfg.ErrorLog.Printf("router: shard %s degraded: %v", rt.cfg.Shards[i].Name, err)
		}
	}
}

// routingKey reduces a canonical content address to the 16 hex digits a
// job ID embeds — the unit of affinity. Hashing the prefix (not the full
// key) is what lets ID-addressed requests land on the submitting shard.
func routingKey(key string) string {
	if len(key) > 16 {
		return key[:16]
	}
	return key
}

// routingKeyFromID recovers the routing key from a public job ID
// ("j-" + 16 hex digits). Unknown shapes hash as-is — they will 404 on
// whatever shard they reach, which is the right answer for a bogus ID.
func routingKeyFromID(id string) string {
	return strings.TrimPrefix(id, "j-")
}

// candidates returns shard indices in retry order for a routing key:
// the ring sequence with healthy shards first (ring order preserved
// within each class). Degraded shards stay as a last resort — if the
// whole cluster looks down, the router still tries the primary rather
// than inventing its own failure.
func (rt *Router) candidates(rkey string) []int {
	seq := rt.ring.sequence(rkey)
	out := make([]int, 0, len(seq))
	for _, i := range seq {
		if rt.healthy[i].Load() {
			out = append(out, i)
		}
	}
	for _, i := range seq {
		if !rt.healthy[i].Load() {
			out = append(out, i)
		}
	}
	return out
}

// Handler returns the router's HTTP surface — the same API shape the
// shards serve, plus the router's own health and metrics fan-ins.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", rt.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", rt.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", rt.handleByID)
	mux.HandleFunc("GET /v1/jobs/{id}/result", rt.handleByID)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", rt.handleByID)
	mux.HandleFunc("DELETE /v1/jobs/{id}", rt.handleByID)
	mux.HandleFunc("POST /v1/bin/submit", rt.handleBinSubmit)
	mux.HandleFunc("GET /v1/bin/jobs/{id}", rt.handleByID)
	mux.HandleFunc("GET /v1/bin/jobs/{id}/result", rt.handleByID)
	mux.HandleFunc("GET /v1/experiments", rt.handleExperiments)
	mux.HandleFunc("POST /v1/experiments/matrix", rt.handleMatrix)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return rt.instrument(mux)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}

// writeWireError is the binary surface's writeError: one TypeError
// frame, same shape the shards emit, so a routed client never needs a
// JSON decoder on the binary paths.
func writeWireError(w http.ResponseWriter, status int, format string, args ...any) {
	e := wire.NewEncoder()
	defer e.Release()
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(status)
	w.Write(e.ErrorFrame(wire.Error{Code: status, Message: fmt.Sprintf(format, args...)}))
}

// hopByHop are the headers a proxy must not forward (RFC 9110 §7.6.1).
var hopByHop = map[string]bool{
	"Connection": true, "Keep-Alive": true, "Proxy-Authenticate": true,
	"Proxy-Authorization": true, "Te": true, "Trailer": true,
	"Transfer-Encoding": true, "Upgrade": true,
}

// forward relays one exchange to shard i: same method, path, query and
// headers, the given body (nil for bodiless methods). It reports
// transport failure (retryable — nothing was written to the client yet)
// distinctly from a delivered response. Response bodies are copied with
// a flush per read so SSE events fan through unbuffered; for
// event-stream responses the server-side write deadline is lifted first,
// mirroring the shards' own SSE exemption.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, i int, body []byte) (delivered bool) {
	shard := rt.cfg.Shards[i]
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, shard.URL+r.URL.RequestURI(), rdr)
	if err != nil {
		rt.markDegraded(i, err)
		return false
	}
	for k, vs := range r.Header {
		if hopByHop[http.CanonicalHeaderKey(k)] {
			continue
		}
		req.Header[k] = vs
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		if r.Context().Err() != nil {
			return true // the client hung up; nothing left to deliver or retry
		}
		rt.metrics.inc("forward_errors_total", 1)
		rt.markDegraded(i, err)
		return false
	}
	defer resp.Body.Close()

	h := w.Header()
	for k, vs := range resp.Header {
		if hopByHop[k] {
			continue
		}
		h[k] = vs
	}
	h.Set(shardHeader, shard.Name)
	if streamingContentType(resp.Header.Get("Content-Type")) {
		// Streams outlive any sane write timeout; lift it for this
		// response only (best-effort, exactly like the shards do).
		http.NewResponseController(w).SetWriteDeadline(time.Time{})
	}
	w.WriteHeader(resp.StatusCode)
	flushingCopy(w, resp.Body)
	rt.metrics.incShard(rt.cfg.Shards[i].Name, 1)
	return true
}

// streamingContentType reports response types the router must relay
// unbuffered with the write deadline lifted: SSE job streams, ndjson
// matrix streams, and wire-framed binary streams.
func streamingContentType(ct string) bool {
	return strings.HasPrefix(ct, "text/event-stream") ||
		strings.HasPrefix(ct, "application/x-ndjson") ||
		strings.HasPrefix(ct, wire.ContentType)
}

// flushingCopy copies src to w flushing after every read, so a proxied
// SSE stream delivers each event the moment the shard emits it — the
// router adds latency, never buffering.
func flushingCopy(w http.ResponseWriter, src io.Reader) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// retryableStatus reports shard responses worth retrying on the next
// replica for idempotent-by-design submissions: the shard answered but
// cannot serve (draining, dying, proxied-to-dead). 429 is deliberately
// NOT here — backpressure is per-shard capacity feedback, and rerouting
// around it would both defeat admission control and strand the retry on
// a shard without the key's cache.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	// Compute the shard key exactly as a shard would: decode, normalize,
	// content-address. Requests a shard would reject route to the
	// primary healthy shard so the rejection body is byte-identical to a
	// single daemon's.
	rkey := "invalid-request"
	var req serve.Request
	if jerr := json.Unmarshal(body, &req); jerr == nil {
		if _, key, nerr := serve.Normalize(req); nerr == nil {
			rkey = routingKey(key)
		}
	}
	cands := rt.candidates(rkey)
	for n, i := range cands {
		if n > 0 {
			rt.metrics.inc("retries_total", 1)
		}
		if rt.forwardSubmit(w, r, i, body, n == len(cands)-1) {
			return
		}
	}
	rt.metrics.inc("no_shard_total", 1)
	writeError(w, http.StatusBadGateway, "no shard reachable for this request")
}

// forwardSubmit is forward with submit-specific retry semantics: a
// delivered 502/503/504 from a non-final candidate is swallowed and the
// next replica tried — submission is idempotent by content address, so
// re-sending the same body to another shard at worst computes the result
// there too, it can never fork the answer.
func (rt *Router) forwardSubmit(w http.ResponseWriter, r *http.Request, i int, body []byte, final bool) bool {
	shard := rt.cfg.Shards[i]
	req, err := http.NewRequestWithContext(r.Context(), r.Method, shard.URL+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		rt.markDegraded(i, err)
		return false
	}
	for k, vs := range r.Header {
		if hopByHop[http.CanonicalHeaderKey(k)] {
			continue
		}
		req.Header[k] = vs
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		if r.Context().Err() != nil {
			return true
		}
		rt.metrics.inc("forward_errors_total", 1)
		rt.markDegraded(i, err)
		return false
	}
	defer resp.Body.Close()
	if !final && retryableStatus(resp.StatusCode) {
		io.Copy(io.Discard, resp.Body)
		rt.metrics.inc("forward_errors_total", 1)
		return false
	}
	h := w.Header()
	for k, vs := range resp.Header {
		if hopByHop[k] {
			continue
		}
		h[k] = vs
	}
	h.Set(shardHeader, shard.Name)
	if streamingContentType(resp.Header.Get("Content-Type")) {
		// Matrix submissions answer with a long-lived cell stream.
		http.NewResponseController(w).SetWriteDeadline(time.Time{})
	}
	w.WriteHeader(resp.StatusCode)
	flushingCopy(w, resp.Body)
	rt.metrics.incShard(shard.Name, 1)
	return true
}

// handleBinSubmit routes a binary submission exactly like handleSubmit
// routes a JSON one: derive the canonical key the way a shard would —
// here by decoding the wire frame — and walk the same candidate order
// with the same retry rules. Frames a shard would reject still route (to
// the primary), so the rejection frame is byte-identical to a single
// daemon's.
func (rt *Router) handleBinSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeWireError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	rkey := "invalid-request"
	if typ, payload, rest, ferr := wire.SplitFrame(body); ferr == nil && typ == wire.TypeRequest && len(rest) == 0 {
		if req, derr := wire.DecodeRequest(payload); derr == nil {
			if _, key, nerr := serve.Normalize(req); nerr == nil {
				rkey = routingKey(key)
			}
		}
	}
	cands := rt.candidates(rkey)
	for n, i := range cands {
		if n > 0 {
			rt.metrics.inc("retries_total", 1)
		}
		if rt.forwardSubmit(w, r, i, body, n == len(cands)-1) {
			return
		}
	}
	rt.metrics.inc("no_shard_total", 1)
	writeWireError(w, http.StatusBadGateway, "no shard reachable for this request")
}

// handleMatrix routes a whole experiment matrix as one unit: the batch's
// routing key is the matrix key (a hash over every cell key), so one
// matrix streams from one shard and identical matrices land on the shard
// already holding their cells. The flavor follows the request's
// Content-Type, mirroring the shards' negotiation.
func (rt *Router) handleMatrix(w http.ResponseWriter, r *http.Request) {
	binary := strings.HasPrefix(r.Header.Get("Content-Type"), wire.ContentType)
	fail := func(status int, format string, args ...any) {
		if binary {
			writeWireError(w, status, format, args...)
		} else {
			writeError(w, status, format, args...)
		}
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		fail(http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	rkey := "invalid-request"
	var m serve.MatrixRequest
	decoded := false
	if binary {
		if typ, payload, rest, ferr := wire.SplitFrame(body); ferr == nil && typ == wire.TypeMatrixRequest && len(rest) == 0 {
			if m, err = wire.DecodeMatrixRequest(payload); err == nil {
				decoded = true
			}
		}
	} else {
		decoded = json.Unmarshal(body, &m) == nil
	}
	if decoded {
		if _, _, key, merr := serve.MatrixCells(m); merr == nil {
			rkey = routingKey(key)
		}
	}
	cands := rt.candidates(rkey)
	for n, i := range cands {
		if n > 0 {
			rt.metrics.inc("retries_total", 1)
		}
		if rt.forwardSubmit(w, r, i, body, n == len(cands)-1) {
			return
		}
	}
	rt.metrics.inc("no_shard_total", 1)
	fail(http.StatusBadGateway, "no shard reachable for this request")
}

// handleByID routes job, result, stream and cancel requests by the key
// prefix their ID embeds. A transport failure falls through to the next
// replica: for a lost shard that successor answers 404, which is exactly
// what tells a retrying client to resubmit (idempotently) and converge.
func (rt *Router) handleByID(w http.ResponseWriter, r *http.Request) {
	cands := rt.candidates(routingKeyFromID(r.PathValue("id")))
	for n, i := range cands {
		if n > 0 {
			rt.metrics.inc("retries_total", 1)
		}
		if rt.forward(w, r, i, nil) {
			return
		}
	}
	rt.metrics.inc("no_shard_total", 1)
	if strings.HasPrefix(r.URL.Path, "/v1/bin/") {
		writeWireError(w, http.StatusBadGateway, "no shard reachable for job %q", r.PathValue("id"))
		return
	}
	writeError(w, http.StatusBadGateway, "no shard reachable for job %q", r.PathValue("id"))
}

// handleExperiments forwards to the first reachable shard — the artifact
// list is identical on every shard (it is compiled in).
func (rt *Router) handleExperiments(w http.ResponseWriter, r *http.Request) {
	for _, i := range rt.candidates("experiments") {
		if rt.forward(w, r, i, nil) {
			return
		}
	}
	rt.metrics.inc("no_shard_total", 1)
	writeError(w, http.StatusBadGateway, "no shard reachable")
}

// handleList fans GET /v1/jobs in from every reachable shard and merges
// the job arrays in shard order. Listing is the one endpoint whose body
// is not byte-identical to a single daemon's — a cluster has no global
// submission order to reconstruct — so the merge is deterministic
// (shard-declaration order) instead.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	merged := make([]json.RawMessage, 0, 64)
	reached := false
	for i := range rt.cfg.Shards {
		body, err := rt.get(r, i, "/v1/jobs")
		if err != nil {
			continue
		}
		reached = true
		var page struct {
			Jobs []json.RawMessage `json:"jobs"`
		}
		if json.Unmarshal(body, &page) == nil {
			merged = append(merged, page.Jobs...)
		}
	}
	if !reached {
		rt.metrics.inc("no_shard_total", 1)
		writeError(w, http.StatusBadGateway, "no shard reachable")
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []json.RawMessage `json:"jobs"`
	}{merged})
}

// get fetches one shard-local path on the caller's context, returning
// the body only for 200s.
func (rt *Router) get(r *http.Request, i int, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, rt.cfg.Shards[i].URL+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		rt.markDegraded(i, err)
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("router: shard %s %s: HTTP %d", rt.cfg.Shards[i].Name, path, resp.StatusCode)
	}
	return body, nil
}

// shardHealth is one shard's slot in the /healthz fan-in.
type shardHealth struct {
	Name      string          `json:"name"`
	URL       string          `json:"url"`
	Healthy   bool            `json:"healthy"`
	Reachable bool            `json:"reachable"`
	Healthz   json.RawMessage `json:"healthz,omitempty"`
}

// handleHealthz fans in every shard's /healthz body under the router's
// own status: "ok" while at least one shard is reachable, "degraded"
// (503) otherwise.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	out := struct {
		Status  string        `json:"status"`
		Version string        `json:"version"`
		Shards  []shardHealth `json:"shards"`
	}{Status: "degraded", Version: version.String()}
	for i, s := range rt.cfg.Shards {
		sh := shardHealth{Name: s.Name, URL: s.URL, Healthy: rt.healthy[i].Load()}
		if body, err := rt.get(r, i, "/healthz"); err == nil {
			sh.Reachable = true
			sh.Healthz = json.RawMessage(bytes.TrimSuffix(body, []byte("\n")))
			out.Status = "ok"
		}
		out.Shards = append(out.Shards, sh)
	}
	status := http.StatusOK
	if out.Status != "ok" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, out)
}

// handleReadyz reports the router ready while any shard is healthy: a
// cluster degrades shard by shard, it does not flap whole.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	for i := range rt.healthy {
		if rt.healthy[i].Load() {
			writeJSON(w, http.StatusOK, struct {
				Ready bool `json:"ready"`
			}{true})
			return
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
	}{false, "no healthy shard"})
}
