package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"neofog"
	"neofog/internal/serve"
	"neofog/internal/serve/client"
)

// fixedTime mirrors the serve tests' fake clock so routed and direct
// responses carry identical timestamps and can be compared byte for
// byte.
var fixedTime = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

// testCluster is N in-process shards behind one router, all on the
// fixed clock, with the background prober disabled — tests drive Probe
// explicitly so health transitions happen at deterministic points.
type testCluster struct {
	rt      *Router
	ts      *httptest.Server // the router's front door
	shardTS []*httptest.Server
	servers []*serve.Server
}

// startCluster boots the cluster. mkCfg, when non-nil, supplies each
// shard's serve.Config (the chaos tests hook shard execution); the
// clock is always forced to fixedTime.
func startCluster(t *testing.T, n int, mkCfg func(i int) serve.Config) *testCluster {
	t.Helper()
	c := &testCluster{}
	var shards []Shard
	for i := 0; i < n; i++ {
		cfg := serve.Config{Workers: 2}
		if mkCfg != nil {
			cfg = mkCfg(i)
		}
		cfg.Clock = func() time.Time { return fixedTime }
		srv, err := serve.New(cfg)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		ts := httptest.NewServer(srv.Handler())
		c.servers = append(c.servers, srv)
		c.shardTS = append(c.shardTS, ts)
		shards = append(shards, Shard{Name: fmt.Sprintf("shard-%d", i), URL: ts.URL})
	}
	rt, err := New(Config{
		Shards:        shards,
		ProbeInterval: -1,
		Clock:         func() time.Time { return fixedTime },
	})
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	c.rt = rt
	c.ts = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		c.ts.Close()
		rt.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for i, srv := range c.servers {
			srv.Drain(ctx) // error ignored; chaos tests kill shards mid-test
			c.shardTS[i].Close()
		}
	})
	return c
}

// post submits a raw body and returns the response whole (caller closes
// nothing; the body is drained here).
func post(t *testing.T, baseURL, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read submit response: %v", err)
	}
	return resp.StatusCode, resp.Header, b
}

func get(t *testing.T, baseURL, path string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(baseURL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, resp.Header, b
}

// waitDone polls a job through the given base URL until done.
func waitDone(t *testing.T, baseURL, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, _, body := get(t, baseURL, "/v1/jobs/"+id)
		if code == http.StatusOK {
			var j serve.Job
			if err := json.Unmarshal(body, &j); err != nil {
				t.Fatalf("decode job: %v", err)
			}
			switch j.Status {
			case serve.StatusDone:
				return body
			case serve.StatusFailed, serve.StatusCancelled, serve.StatusPoisoned:
				t.Fatalf("job %s reached %q: %s", id, j.Status, j.Error)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished", id)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func simBody(seed int64) string {
	return fmt.Sprintf(`{"config":{"nodes":4,"rounds":20,"seed":%d}}`, seed)
}

// ownerShard computes, from first principles, which shard a request
// body must land on: normalize exactly like a shard, reduce to the
// routing key, walk the ring.
func ownerShard(t *testing.T, c *testCluster, body string) string {
	t.Helper()
	var req serve.Request
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatalf("decode %q: %v", body, err)
	}
	_, key, err := serve.Normalize(req)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return c.rt.cfg.Shards[c.rt.ring.owner(routingKey(key))].Name
}

// TestRouterKeyAffinity is the affinity property test: every submission
// lands on the shard the ring predicts, a resubmission lands on the same
// shard and reuses the first run (deduped or cached — never a second
// cold compute elsewhere), and ID-addressed reads route to the
// submitting shard.
func TestRouterKeyAffinity(t *testing.T) {
	c := startCluster(t, 3, nil)
	shardsHit := map[string]bool{}
	for seed := int64(0); seed < 25; seed++ {
		body := simBody(seed)
		want := ownerShard(t, c, body)

		code, hdr, raw := post(t, c.ts.URL, body)
		if code != http.StatusOK && code != http.StatusAccepted {
			t.Fatalf("seed %d: submit status %d: %s", seed, code, raw)
		}
		if got := hdr.Get(shardHeader); got != want {
			t.Fatalf("seed %d: routed to %q, ring owner is %q", seed, got, want)
		}
		shardsHit[hdr.Get(shardHeader)] = true

		var sub serve.SubmitResponse
		if err := json.Unmarshal(raw, &sub); err != nil {
			t.Fatalf("decode submit: %v", err)
		}

		code2, hdr2, raw2 := post(t, c.ts.URL, body)
		if code2 != http.StatusOK && code2 != http.StatusAccepted {
			t.Fatalf("seed %d: resubmit status %d: %s", seed, code2, raw2)
		}
		if got := hdr2.Get(shardHeader); got != want {
			t.Fatalf("seed %d: resubmission routed to %q, first went to %q", seed, got, want)
		}
		var sub2 serve.SubmitResponse
		if err := json.Unmarshal(raw2, &sub2); err != nil {
			t.Fatalf("decode resubmit: %v", err)
		}
		if !sub2.Cached && !sub2.Deduped {
			t.Fatalf("seed %d: resubmission neither cached nor deduped — affinity lost", seed)
		}

		if _, hdr3, _ := get(t, c.ts.URL, "/v1/jobs/"+sub.Job.ID); hdr3.Get(shardHeader) != want {
			t.Fatalf("seed %d: ID read routed to %q, submission went to %q", seed, hdr3.Get(shardHeader), want)
		}
	}
	// Sanity: with 25 distinct configs the ring should actually spread
	// load — a constant hash would pass every check above.
	if len(shardsHit) < 2 {
		t.Fatalf("all 25 configs landed on one shard: %v", shardsHit)
	}
}

// TestRoutedMatchesDirect is the byte-equality battery: for the same
// request sequence on the same fake clock, the routed cluster's response
// bodies must equal a single daemon's exactly — submit, job, result,
// experiment list, and malformed-submission rejections.
func TestRoutedMatchesDirect(t *testing.T) {
	direct, err := serve.New(serve.Config{Workers: 2, Clock: func() time.Time { return fixedTime }})
	if err != nil {
		t.Fatalf("direct serve.New: %v", err)
	}
	dts := httptest.NewServer(direct.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		direct.Drain(ctx)
		dts.Close()
	})
	c := startCluster(t, 3, nil)

	check := func(name string, dCode, rCode int, dBody, rBody []byte) {
		t.Helper()
		if dCode != rCode {
			t.Fatalf("%s: direct status %d, routed %d", name, dCode, rCode)
		}
		if !bytes.Equal(dBody, rBody) {
			t.Fatalf("%s: bodies differ\ndirect: %s\nrouted: %s", name, dBody, rBody)
		}
	}

	body := simBody(11)
	dCode, _, dRaw := post(t, dts.URL, body)
	rCode, _, rRaw := post(t, c.ts.URL, body)
	check("submit", dCode, rCode, dRaw, rRaw)

	var sub serve.SubmitResponse
	if err := json.Unmarshal(dRaw, &sub); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	dJob := waitDone(t, dts.URL, sub.Job.ID)
	rJob := waitDone(t, c.ts.URL, sub.Job.ID)
	if !bytes.Equal(dJob, rJob) {
		t.Fatalf("done job snapshots differ\ndirect: %s\nrouted: %s", dJob, rJob)
	}

	dCode, _, dRes := get(t, dts.URL, "/v1/jobs/"+sub.Job.ID+"/result")
	rCode, _, rRes := get(t, c.ts.URL, "/v1/jobs/"+sub.Job.ID+"/result")
	check("result", dCode, rCode, dRes, rRes)

	dCode, _, dExp := get(t, dts.URL, "/v1/experiments")
	rCode, _, rExp := get(t, c.ts.URL, "/v1/experiments")
	check("experiments", dCode, rCode, dExp, rExp)

	// A request the shards reject must come back with the daemon's own
	// rejection body, not a router-invented one.
	for _, bad := range []string{
		`{"kind":"bogus"}`,
		`{"kind":"simulate","experiment":"x"}`,
		`not json at all`,
	} {
		dCode, _, dRaw := post(t, dts.URL, bad)
		rCode, _, rRaw := post(t, c.ts.URL, bad)
		check("reject "+bad, dCode, rCode, dRaw, rRaw)
	}

	// Unknown job IDs 404 identically.
	dCode, _, dMiss := get(t, dts.URL, "/v1/jobs/j-0123456789abcdef")
	rCode, _, rMiss := get(t, c.ts.URL, "/v1/jobs/j-0123456789abcdef")
	check("missing job", dCode, rCode, dMiss, rMiss)
}

// TestChaosShardDeathConverges kills the shard that owns a job while the
// job is parked mid-execution there, and asserts a retrying client
// pointed at the router still converges: the poll hits the dead shard,
// falls through to the successor, the successor's 404 triggers an
// idempotent resubmission, and the result comes back — byte-identical to
// a direct single-daemon run.
func TestChaosShardDeathConverges(t *testing.T) {
	var victim atomic.Int32
	victim.Store(-1) // no shard parks until the victim is chosen
	var parkKey atomic.Value
	parkKey.Store("")
	gate := make(chan struct{})
	var released atomic.Bool
	release := func() {
		if released.CompareAndSwap(false, true) {
			close(gate)
		}
	}

	c := startCluster(t, 3, func(i int) serve.Config {
		return serve.Config{
			Workers: 2,
			ExecHook: func(key string) {
				if int32(i) == victim.Load() && key == parkKey.Load().(string) {
					<-gate
				}
			},
		}
	})
	t.Cleanup(release) // runs before the cluster cleanup, so drains cannot hang

	req := serve.Request{Config: &neofog.SimulationConfig{Nodes: 4, Rounds: 25, Seed: 99}}
	_, key, err := serve.Normalize(req)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	owner := c.rt.ring.owner(routingKey(key))
	victim.Store(int32(owner))
	parkKey.Store(key)

	cl := &client.Client{
		BaseURL:      c.ts.URL,
		MaxAttempts:  8,
		BaseDelay:    2 * time.Millisecond,
		MaxDelay:     20 * time.Millisecond,
		PollInterval: 2 * time.Millisecond,
		Seed:         1,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	type runResult struct {
		body []byte
		err  error
	}
	done := make(chan runResult, 1)
	go func() {
		body, err := cl.Run(ctx, req)
		done <- runResult{body, err}
	}()

	// Wait until the job is running (parked) on the victim shard.
	id := serve.JobID(key)
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, hdr, body := get(t, c.ts.URL, "/v1/jobs/"+id)
		if code == http.StatusOK {
			var j serve.Job
			if err := json.Unmarshal(body, &j); err != nil {
				t.Fatalf("decode job: %v", err)
			}
			if j.Status == serve.StatusRunning {
				if got := hdr.Get(shardHeader); got != c.rt.cfg.Shards[owner].Name {
					t.Fatalf("job running on %q, expected owner %q", got, c.rt.cfg.Shards[owner].Name)
				}
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running on the victim shard")
		}
		time.Sleep(time.Millisecond)
	}

	// Kill the owner mid-job: sever live connections and stop listening.
	c.shardTS[owner].CloseClientConnections()
	c.shardTS[owner].Close()
	c.rt.Probe()
	if c.rt.healthy[owner].Load() {
		t.Fatal("probe left the dead shard marked healthy")
	}

	res := <-done
	if res.err != nil {
		t.Fatalf("client did not converge after shard death: %v", res.err)
	}
	if len(res.body) == 0 {
		t.Fatal("converged with an empty result")
	}

	// The survivor's answer must equal a fresh single daemon's.
	direct, err := serve.New(serve.Config{Workers: 2, Clock: func() time.Time { return fixedTime }})
	if err != nil {
		t.Fatalf("direct serve.New: %v", err)
	}
	dts := httptest.NewServer(direct.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		direct.Drain(ctx)
		dts.Close()
	}()
	dcl := &client.Client{BaseURL: dts.URL, PollInterval: 2 * time.Millisecond, Seed: 1}
	want, err := dcl.Run(ctx, req)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	if !bytes.Equal(res.body, want) {
		t.Fatalf("post-failover result diverged from direct run\nrouted: %s\ndirect: %s", res.body, want)
	}

	// The job must now live on a surviving shard, not the corpse.
	_, hdr, _ := get(t, c.ts.URL, "/v1/jobs/"+id)
	if got := hdr.Get(shardHeader); got == c.rt.cfg.Shards[owner].Name || got == "" {
		t.Fatalf("post-failover job read served by %q", got)
	}
}

// TestRouterHealthFanIn exercises /healthz, /readyz and shard recovery:
// a dead shard degrades the fan-in but not readiness; a revived shard
// rejoins after one probe.
func TestRouterHealthFanIn(t *testing.T) {
	c := startCluster(t, 3, nil)

	code, _, body := get(t, c.ts.URL, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, body)
	}
	var h struct {
		Status string `json:"status"`
		Shards []struct {
			Name      string `json:"name"`
			Healthy   bool   `json:"healthy"`
			Reachable bool   `json:"reachable"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if h.Status != "ok" || len(h.Shards) != 3 {
		t.Fatalf("healthz fan-in: %+v", h)
	}
	for _, s := range h.Shards {
		if !s.Healthy || !s.Reachable {
			t.Fatalf("shard %s not healthy/reachable in %+v", s.Name, h)
		}
	}

	// Kill shard 1; the router must stay ready and report the loss.
	c.shardTS[1].Close()
	c.rt.Probe()
	code, _, body = get(t, c.ts.URL, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz with one dead shard: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if h.Shards[1].Healthy || h.Shards[1].Reachable {
		t.Fatalf("dead shard still reported healthy: %+v", h.Shards[1])
	}
	if code, _, _ := get(t, c.ts.URL, "/readyz"); code != http.StatusOK {
		t.Fatalf("readyz went %d with 2 of 3 shards alive", code)
	}

	// Revive it on the same handler; one probe sweep re-admits it.
	revived := httptest.NewServer(c.servers[1].Handler())
	t.Cleanup(revived.Close)
	c.rt.cfg.Shards[1].URL = revived.URL
	c.rt.Probe()
	if !c.rt.healthy[1].Load() {
		t.Fatal("revived shard not re-admitted after probe")
	}
}

// TestRouterMetricsAggregate drives traffic through the cluster and
// checks the /metrics fan-in: router-own series present, shard series
// summed across shards.
func TestRouterMetricsAggregate(t *testing.T) {
	c := startCluster(t, 3, nil)
	for seed := int64(0); seed < 6; seed++ {
		_, _, raw := post(t, c.ts.URL, simBody(seed))
		var sub serve.SubmitResponse
		if err := json.Unmarshal(raw, &sub); err != nil {
			t.Fatalf("decode submit: %v", err)
		}
		waitDone(t, c.ts.URL, sub.Job.ID)
	}
	code, _, body := get(t, c.ts.URL, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	text := string(body)
	for _, want := range []string{
		"neofog_router_requests_total ",
		"neofog_router_shards_scraped 3",
		"neofog_router_shard_healthy{shard=\"shard-0\"} 1",
		"neofog_router_request_seconds_count ",
		"neofog_serve_jobs_submitted_total 6",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The aggregated submitted counter must be the sum over shards.
	var perShard int
	for _, sts := range c.shardTS {
		_, _, sb := get(t, sts.URL, "/metrics")
		for _, line := range strings.Split(string(sb), "\n") {
			if strings.HasPrefix(line, "neofog_serve_jobs_submitted_total ") {
				var v int
				fmt.Sscanf(line, "neofog_serve_jobs_submitted_total %d", &v)
				perShard += v
			}
		}
	}
	if perShard != 6 {
		t.Fatalf("shards saw %d submissions in total, want 6", perShard)
	}
}
