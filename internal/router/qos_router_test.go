package router

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"neofog/internal/qos"
	"neofog/internal/serve"
)

// postTenant submits a body through baseURL with an X-Neofog-Tenant
// label and returns the response whole.
func postTenant(t *testing.T, baseURL, tenant, body string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.TenantHeader, tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read submit response: %v", err)
	}
	return resp.StatusCode, resp.Header, b
}

// TestRoutedTenantMatchesDirect extends the byte-equality battery to
// the QoS surface: a tenant-labelled submission through the router must
// behave exactly like one against a bare daemon — same acceptance, same
// tenant echo, and byte-identical differentiated 429s with the same
// per-tenant Retry-After when the tenant's bucket runs dry.
func TestRoutedTenantMatchesDirect(t *testing.T) {
	tenants := []qos.TenantConfig{{Name: "metered", Weight: 2, Rate: 1, Burst: 1}}
	direct, err := serve.New(serve.Config{
		Workers: 2,
		Tenants: tenants,
		Clock:   func() time.Time { return fixedTime },
	})
	if err != nil {
		t.Fatalf("direct serve.New: %v", err)
	}
	dts := httptest.NewServer(direct.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		direct.Drain(ctx)
		dts.Close()
	})
	// One shard so the routed tenant hits the same bucket every time —
	// per-tenant state is per shard, and this test is about equivalence,
	// not placement.
	c := startCluster(t, 1, func(int) serve.Config {
		return serve.Config{Workers: 2, Tenants: tenants}
	})

	// First submission spends the burst token on both surfaces and must
	// echo the tenant back through the proxy.
	dCode, dHdr, dRaw := postTenant(t, dts.URL, "metered", simBody(31))
	rCode, rHdr, rRaw := postTenant(t, c.ts.URL, "metered", simBody(31))
	if dCode != http.StatusAccepted || rCode != http.StatusAccepted {
		t.Fatalf("burst submit: direct %d routed %d", dCode, rCode)
	}
	if !bytes.Equal(dRaw, rRaw) {
		t.Fatalf("accepted bodies differ\ndirect: %s\nrouted: %s", dRaw, rRaw)
	}
	if got := rHdr.Get(serve.TenantHeader); got != "metered" {
		t.Fatalf("routed submit echoed tenant %q, want metered", got)
	}
	if d, r := dHdr.Get(serve.TenantHeader), rHdr.Get(serve.TenantHeader); d != r {
		t.Fatalf("tenant echo differs: direct %q routed %q", d, r)
	}

	// The bucket is dry: a second distinct submission is the tenant-rate
	// 429, and the router must relay it verbatim — body, tenant header,
	// and Retry-After all matching the bare daemon's.
	dCode, dHdr, dRaw = postTenant(t, dts.URL, "metered", simBody(32))
	rCode, rHdr, rRaw = postTenant(t, c.ts.URL, "metered", simBody(32))
	if dCode != http.StatusTooManyRequests || rCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit: direct %d routed %d", dCode, rCode)
	}
	if !bytes.Equal(dRaw, rRaw) {
		t.Fatalf("rejection bodies differ\ndirect: %s\nrouted: %s", dRaw, rRaw)
	}
	for _, h := range []string{serve.TenantHeader, "Retry-After"} {
		if d, r := dHdr.Get(h), rHdr.Get(h); d != r || d == "" {
			t.Fatalf("rejection header %s: direct %q routed %q", h, d, r)
		}
	}

	// Tenant state is admission state, not identity: an unlabelled
	// submission still flows while metered is throttled, on both
	// surfaces.
	dCode, _, _ = post(t, dts.URL, simBody(33))
	rCode, _, _ = post(t, c.ts.URL, simBody(33))
	if dCode != http.StatusAccepted || rCode != http.StatusAccepted {
		t.Fatalf("default-tenant submit: direct %d routed %d", dCode, rCode)
	}
}

// TestRouterTenantMetricsFanIn drives tenant-labelled traffic through
// the cluster and checks the scrape fan-in keeps the tenant label:
// neofog_tenant_* series with the same {tenant=...} labels sum across
// shards, exactly like the unlabelled families.
func TestRouterTenantMetricsFanIn(t *testing.T) {
	c := startCluster(t, 3, func(int) serve.Config {
		return serve.Config{
			Workers: 2,
			Tenants: []qos.TenantConfig{{Name: "gold", Weight: 3}},
		}
	})
	for seed := int64(40); seed < 46; seed++ {
		code, _, raw := postTenant(t, c.ts.URL, "gold", simBody(seed))
		if code != http.StatusAccepted {
			t.Fatalf("seed %d: status %d: %s", seed, code, raw)
		}
		var sub serve.SubmitResponse
		if err := json.Unmarshal(raw, &sub); err != nil {
			t.Fatalf("decode submit: %v", err)
		}
		waitDone(t, c.ts.URL, sub.Job.ID)
	}
	code, _, body := get(t, c.ts.URL, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	text := string(body)
	for _, want := range []string{
		// All 6 gold submissions, summed across however many shards the
		// ring spread them over.
		`neofog_tenant_jobs_submitted_total{tenant="gold"} 6`,
		`neofog_tenant_jobs_executed_total{tenant="gold"} 6`,
		// The per-shard weight gauge sums like everything else: 3 shards
		// × weight 3. A sum is the honest aggregate for counters and a
		// quirk for config gauges; asserting it documents the semantics.
		`neofog_tenant_weight{tenant="gold"} 9`,
		// The default tenant always exists alongside configured ones.
		`neofog_tenant_jobs_submitted_total{tenant="default"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("aggregated metrics missing %q", want)
		}
	}
}
