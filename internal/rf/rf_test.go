package rf

import (
	"math"
	"testing"
	"testing/quick"

	"neofog/internal/units"
)

func TestAirTimeAndEnergy(t *testing.T) {
	r := ML7266()
	// 250 kbps → 32 µs per byte.
	if got := r.AirTime(1); got != 32 {
		t.Fatalf("AirTime(1) = %v, want 32µs", got)
	}
	// Table 2 TX energies are exactly the on-air energies of each app's
	// sample payload.
	cases := []struct {
		app   string
		bytes int
		nJ    float64
	}{
		{"Bridge Health", 8, 22809.6},
		{"UV Meter", 2, 5702.4},
		{"WSN-Temp.", 2, 5702.4},
		{"WSN-Accel.", 6, 17107.2},
		{"Pattern Matching", 1, 2851.2},
	}
	for _, c := range cases {
		if got := r.AirEnergy(c.bytes); math.Abs(float64(got)-c.nJ) > 1e-9 {
			t.Errorf("%s: AirEnergy(%d) = %v, want %v nJ", c.app, c.bytes, float64(got), c.nJ)
		}
	}
}

func TestSoftwareRFInit(t *testing.T) {
	s := NewSoftwareRF(ML7266())
	c := s.InitCost()
	if c.Time != 531*units.Millisecond {
		t.Fatalf("init time = %v, want 531ms", c.Time)
	}
	// Energy at idle power over the init window.
	want := units.Power(14.93).Over(531 * units.Millisecond)
	if math.Abs(float64(c.Energy-want)) > 1 {
		t.Fatalf("init energy = %v, want %v", c.Energy, want)
	}
	if s.SelfStarting() {
		t.Fatal("software RF needs the processor")
	}
	// A faster host shortens init proportionally.
	s.HostClockHz = 2e6
	if got := s.InitCost().Time; got != 265500 {
		t.Fatalf("init at 2MHz = %v, want 265.5ms", got)
	}
}

func TestSoftwareTxFormula(t *testing.T) {
	s := NewSoftwareRF(ML7266())
	// TX(100) = 255 + 1.44·100 + 0.032·100 = 402.2 ms.
	c := s.TxCost(100)
	if c.Time != units.Milliseconds(402.2) {
		t.Fatalf("TxCost(100).Time = %v, want 402.2ms", c.Time)
	}
	// Zero-byte transmission still pays the 255 ms channel overhead.
	if s.TxCost(0).Time != 255*units.Millisecond {
		t.Fatalf("TxCost(0).Time = %v", s.TxCost(0).Time)
	}
}

func TestNVRFLifecycle(t *testing.T) {
	n := NewNVRF(ML7266())
	if n.Configured() || n.SelfStarting() {
		t.Fatal("fresh NVRF must be unconfigured")
	}
	// Unconfigured init costs the full 28 ms configuration.
	if got := n.InitCost().Time; got != 28*units.Millisecond {
		t.Fatalf("unconfigured init = %v, want 28ms", got)
	}
	cfg := n.Configure([]byte{0x01, 0x02, 0x03})
	if cfg.Time != 28*units.Millisecond {
		t.Fatalf("configure = %v, want 28ms", cfg.Time)
	}
	if !n.Configured() || !n.SelfStarting() {
		t.Fatal("NVRF should be configured and self-starting")
	}
	// Configured init is a microsecond-scale NV restore — the 27×-class
	// advantage over software RF.
	if got := n.InitCost().Time; got >= units.Millisecond {
		t.Fatalf("configured init = %v, want µs-scale", got)
	}
}

func TestNVRFTxFormula(t *testing.T) {
	n := NewNVRF(ML7266())
	n.Configure(nil)
	// TX(100) = 1.74 + 0.156 + 0.216·100 + 0.032·100 = 26.696 ms.
	if got := n.TxCost(100).Time; got != units.Milliseconds(26.696) {
		t.Fatalf("TxCost(100).Time = %v, want 26.696ms", got)
	}
}

// The headline claims of [80]: NVRF speeds up re-initialisation by ~27×
// (here far more, since software re-init is 531 ms) and the per-packet
// path is dramatically cheaper.
func TestNVRFAdvantages(t *testing.T) {
	sw := NewSoftwareRF(ML7266())
	nv := NewNVRF(ML7266())
	nv.Configure(nil)

	if float64(sw.InitCost().Time)/float64(nv.InitCost().Time) < 27 {
		t.Fatal("NVRF re-init should be ≥27× faster than software")
	}
	for _, n := range []int{1, 8, 64, 127} {
		st, nt := sw.TxCost(n), nv.TxCost(n)
		if nt.Time >= st.Time {
			t.Fatalf("NVRF TX(%d) time %v not faster than software %v", n, nt.Time, st.Time)
		}
		if nt.Energy >= st.Energy {
			t.Fatalf("NVRF TX(%d) energy %v not cheaper than software %v", n, nt.Energy, st.Energy)
		}
	}
	// Throughput advantage for a full init+tx round should be large
	// (prior measurements report 6.2×; ours is larger because the
	// software path's 531 ms init dominates).
	n := 64
	swRound := sw.InitCost().Add(sw.TxCost(n))
	nvRound := nv.InitCost().Add(nv.TxCost(n))
	if float64(swRound.Time)/float64(nvRound.Time) < 6.2 {
		t.Fatalf("round speedup = %.1f, want ≥6.2", float64(swRound.Time)/float64(nvRound.Time))
	}
}

func TestNVRFCloneState(t *testing.T) {
	donor := NewNVRF(ML7266())
	donor.Configure([]byte{0xAA, 0xBB})
	joiner := NewNVRF(ML7266())
	joiner.CloneStateFrom(donor)
	if !joiner.Configured() {
		t.Fatal("clone should configure the joiner")
	}
	if !joiner.State().Equal(donor.State()) {
		t.Fatal("cloned state must match the donor")
	}
	// And be independent afterwards.
	joiner.State().Write(0, []byte{0x00})
	if donor.State().Read(0, 1)[0] != 0xAA {
		t.Fatal("clone must not alias donor state")
	}
}

func TestCloneFromUnconfiguredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNVRF(ML7266()).CloneStateFrom(NewNVRF(ML7266()))
}

// Property: both controllers' TX cost is monotone in payload size, and
// time/energy are always positive.
func TestTxCostMonotone(t *testing.T) {
	sw := NewSoftwareRF(ML7266())
	nv := NewNVRF(ML7266())
	nv.Configure(nil)
	f := func(aRaw, bRaw uint8) bool {
		a, b := int(aRaw), int(bRaw)
		if a > b {
			a, b = b, a
		}
		for _, ctl := range []Controller{sw, nv} {
			ca, cb := ctl.TxCost(a), ctl.TxCost(b)
			if ca.Time <= 0 || ca.Energy <= 0 {
				return false
			}
			if a < b && (cb.Time <= ca.Time || cb.Energy <= ca.Energy) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRxCosts(t *testing.T) {
	sw := NewSoftwareRF(ML7266())
	nv := NewNVRF(ML7266())
	nv.Configure(nil)
	if sw.RxCost(10).Energy <= 0 || nv.RxCost(10).Energy <= 0 {
		t.Fatal("RX must cost energy")
	}
	if nv.RxCost(10).Time >= sw.RxCost(10).Time+255*units.Millisecond {
		t.Fatal("NVRF RX should not be slower than software RX plus overhead")
	}
}

func TestConfigureTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNVRF(ML7266()).Configure(make([]byte, NVRFStateBytes+1))
}

func TestBackscatterCosts(t *testing.T) {
	b := NewBackscatter()
	if !b.SelfStarting() {
		t.Fatal("backscatter needs no processor-driven init")
	}
	// Backscatter's whole reason to exist: orders of magnitude below an
	// active radio for the same payload.
	nv := NewNVRF(ML7266())
	nv.Configure(nil)
	for _, n := range []int{16, 512, 4096} {
		bc, ac := b.TxCost(n), nv.TxCost(n)
		if bc.Energy*100 > ac.Energy {
			t.Fatalf("TX(%d): backscatter %v not ≪ active %v", n, bc.Energy, ac.Energy)
		}
	}
	// But slower on air (100 kbps vs 250 kbps).
	if b.AirTime(100) <= ML7266().AirTime(100) {
		t.Fatal("backscatter air time should exceed the active radio's")
	}
	if b.InitCost().Time != 2*units.Millisecond {
		t.Fatalf("init = %v", b.InitCost().Time)
	}
}
