// Package rf models the node's radio: an ML7266-class Zigbee transceiver
// driven either by traditional software control (the processor re-initialises
// the module over SPI after every power loss) or by a nonvolatile RF
// controller (NVRF, Wang et al. [80]) that keeps the module configuration in
// NV flip-flops and re-initialises the chip autonomously.
//
// All latency formulas are the paper's measured ones (§4):
//
//	software RF: init 531 ms (host MCU @ 1 MHz)
//	             TX(N bytes) = (255 + 1.44·N + 0.032·N) ms
//	NVRF:        one-time configuration 28 ms
//	             TX(N bytes) = (1.74 + 0.156 + 0.216·N + 0.032·N) ms
//
// and the power envelope is 89.1 mW in TX/RX, 14.93 mW idle, with a
// 250 kbps air data rate (0.032 ms per byte — the last term of both TX
// formulas).
package rf

import (
	"math"

	"neofog/internal/nvm"
	"neofog/internal/units"
)

// Radio is the analog/baseband power envelope of the transceiver module.
type Radio struct {
	// DataRate is the air data rate in bits per second.
	DataRate float64
	// TXPower and RXPower are drawn while transmitting/receiving.
	TXPower, RXPower units.Power
	// IdlePower is drawn while the module is powered but inactive.
	IdlePower units.Power
}

// ML7266 is the paper's measured Zigbee chipset envelope.
func ML7266() Radio {
	return Radio{
		DataRate:  250e3,
		TXPower:   89.1,
		RXPower:   89.1,
		IdlePower: 14.93,
	}
}

// AirTime is the on-air duration of n bytes at the radio's data rate.
func (r Radio) AirTime(n int) units.Duration {
	if n < 0 {
		panic("rf: negative byte count")
	}
	return units.Duration(math.Round(float64(n) * 8 / r.DataRate * 1e6))
}

// AirEnergy is the transmit energy of just the on-air portion of n bytes —
// the quantity Table 2 reports as "TX energy".
func (r Radio) AirEnergy(n int) units.Energy {
	return r.TXPower.Over(r.AirTime(n))
}

// Cost is a time+energy pair for one radio operation.
type Cost struct {
	Time   units.Duration
	Energy units.Energy
}

// Add accumulates another cost.
func (c Cost) Add(o Cost) Cost { return Cost{c.Time + o.Time, c.Energy + o.Energy} }

// Controller abstracts the two RF control paths so node models can swap
// them. Costs are what the *node's* energy budget pays; the distinction
// that matters at system level is the enormous initialisation gap.
type Controller interface {
	// InitCost is the cost of bringing the radio from unpowered to ready.
	// For software RF this recurs after every power loss; for a configured
	// NVRF it is the tiny NV restore.
	InitCost() Cost
	// TxCost is the cost of transmitting n payload bytes once ready.
	TxCost(n int) Cost
	// RxCost is the cost of receiving n payload bytes once ready.
	RxCost(n int) Cost
	// SelfStarting reports whether the controller can run a transmission
	// without the processor (true only for a configured NVRF).
	SelfStarting() bool
}

// SoftwareRF is the conventional control path of Fig. 3(a): configuration
// lives in flash, and the host processor replays it over the bus and SPI
// after every power cycle while the RF module burns standby power.
type SoftwareRF struct {
	Radio Radio
	// HostClockHz scales the 531 ms re-initialisation, which is dominated
	// by the 1 MHz host MCU shuffling configuration data.
	HostClockHz float64
}

// NewSoftwareRF builds the conventional controller at a 1 MHz host clock.
func NewSoftwareRF(r Radio) *SoftwareRF {
	return &SoftwareRF{Radio: r, HostClockHz: 1e6}
}

// InitCost implements Controller: 531 ms at 1 MHz, module at idle power
// (the module is powered and waiting through almost all of it).
func (s *SoftwareRF) InitCost() Cost {
	t := units.Duration(math.Round(531 * float64(units.Millisecond) * 1e6 / s.HostClockHz))
	return Cost{Time: t, Energy: s.Radio.IdlePower.Over(t)}
}

// TxCost implements Controller: (255 + 1.472·N) ms total, of which the
// 0.032·N on-air portion is at TX power and the channel/protocol overhead
// is at idle power.
func (s *SoftwareRF) TxCost(n int) Cost {
	air := s.Radio.AirTime(n)
	overhead := units.Milliseconds(255 + 1.44*float64(n))
	return Cost{
		Time:   overhead + air,
		Energy: s.Radio.IdlePower.Over(overhead) + s.Radio.TXPower.Over(air),
	}
}

// RxCost implements Controller: the receiver must be listening for the
// sender's whole protocol window, at RX power.
func (s *SoftwareRF) RxCost(n int) Cost {
	air := s.Radio.AirTime(n)
	overhead := units.Milliseconds(1.44 * float64(n))
	return Cost{
		Time:   overhead + air,
		Energy: s.Radio.RXPower.Over(air) + s.Radio.IdlePower.Over(overhead),
	}
}

// SelfStarting implements Controller.
func (s *SoftwareRF) SelfStarting() bool { return false }

// NVRFStateBytes is the size of the NV register file inside the NVRF
// controller: RF configuration, channel/route state, and the latest
// transmission data (Fig. 3b).
const NVRFStateBytes = 190

// NVRF is the nonvolatile RF controller of Fig. 3(b): after a one-time
// 28 ms configuration by the processor, the controller re-initialises the
// RF chip autonomously from its NV register file in direct nonvolatile
// memory access fashion and can transmit without processor involvement.
type NVRF struct {
	Radio Radio

	regs       *nvm.RegisterFile
	configured bool
}

// NewNVRF builds an unconfigured NVRF controller.
func NewNVRF(r Radio) *NVRF {
	return &NVRF{Radio: r, regs: nvm.NewRegisterFile(NVRFStateBytes)}
}

// Configured reports whether the controller holds a valid configuration.
func (n *NVRF) Configured() bool { return n.configured }

// Configure is the one-time 28 ms processor-driven setup. The cfg bytes
// (channel, route, association state) are persisted in the NV register
// file.
func (n *NVRF) Configure(cfg []byte) Cost {
	if len(cfg) > n.regs.Size() {
		panic("rf: configuration larger than NVRF register file")
	}
	n.regs.Write(0, cfg)
	n.configured = true
	t := 28 * units.Millisecond
	return Cost{Time: t, Energy: n.Radio.IdlePower.Over(t)}
}

// State exposes the NV register file (read-only use expected) so that
// NVD4Q can clone it.
func (n *NVRF) State() *nvm.RegisterFile { return n.regs }

// CloneStateFrom copies another node's NVRF state — Algorithm 2 line 3:
// "Copy its states of NVFF in NVRF controller and NVM". The receiving
// controller becomes configured with the donor's network identity.
func (n *NVRF) CloneStateFrom(donor *NVRF) {
	if !donor.configured {
		panic("rf: cloning from an unconfigured NVRF")
	}
	n.regs = donor.regs.Clone()
	n.configured = true
}

// InitCost implements Controller. A configured NVRF restores its state from
// NV registers in microseconds; an unconfigured one must first pay the full
// processor-driven configuration.
func (n *NVRF) InitCost() Cost {
	if !n.configured {
		c := 28 * units.Millisecond
		return Cost{Time: c, Energy: n.Radio.IdlePower.Over(c)}
	}
	t := 3 * units.Microsecond
	return Cost{Time: t, Energy: n.Radio.IdlePower.Over(t)}
}

// TxCost implements Controller: (1.74 + 0.156 + 0.248·N) ms; the 1.74 ms
// NVRF start plus 0.156 ms setup run at idle power, the 0.216·N DNVMA
// transfer at idle power, and the 0.032·N on-air portion at TX power.
func (n *NVRF) TxCost(nBytes int) Cost {
	air := n.Radio.AirTime(nBytes)
	overhead := units.Milliseconds(1.74 + 0.156 + 0.216*float64(nBytes))
	return Cost{
		Time:   overhead + air,
		Energy: n.Radio.IdlePower.Over(overhead) + n.Radio.TXPower.Over(air),
	}
}

// RxCost implements Controller.
func (n *NVRF) RxCost(nBytes int) Cost {
	air := n.Radio.AirTime(nBytes)
	overhead := units.Milliseconds(1.74 + 0.156 + 0.216*float64(nBytes))
	return Cost{
		Time:   overhead + air,
		Energy: n.Radio.IdlePower.Over(overhead) + n.Radio.RXPower.Over(air),
	}
}

// SelfStarting implements Controller: a configured NVRF transmits from its
// NV data buffer on a timer or control signal with no processor.
func (n *NVRF) SelfStarting() bool { return n.configured }
