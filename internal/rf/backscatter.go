package rf

import (
	"math"

	"neofog/internal/units"
)

// Backscatter models the ambient/Wi-Fi backscatter transmitters of the
// RF-powered camera systems in Table 1 (WispCam [56, 57]; Kellogg et
// al. [27], Liu et al. [41]): instead of generating a carrier, the node
// reflects an ambient one by modulating its antenna impedance. Transmit
// power collapses to the modulator's switching cost — "extremely energy
// efficient" (§2.1) — at the price of a low data rate and a powered
// reader within range.
type Backscatter struct {
	// DataRate is the uplink rate in bits per second (WISP-class
	// backscatter reaches tens to hundreds of kbps; WispCam reports
	// ~100 kbps class links).
	DataRate float64
	// ModPower is the impedance-modulator draw while transmitting.
	ModPower units.Power
	// SetupTime is the per-burst synchronisation preamble.
	SetupTime units.Duration
}

// NewBackscatter returns the WispCam-class link: 100 kbps at 35 µW
// modulator draw with a 2 ms preamble.
func NewBackscatter() *Backscatter {
	return &Backscatter{
		DataRate:  100e3,
		ModPower:  0.035, // 35 µW
		SetupTime: 2 * units.Millisecond,
	}
}

// AirTime is the on-air duration of n bytes.
func (b *Backscatter) AirTime(n int) units.Duration {
	if n < 0 {
		panic("rf: negative byte count")
	}
	return units.Duration(math.Round(float64(n) * 8 / b.DataRate * 1e6))
}

// InitCost implements Controller: backscatter has no radio chain to
// initialise — only the preamble synchronisation.
func (b *Backscatter) InitCost() Cost {
	return Cost{Time: b.SetupTime, Energy: b.ModPower.Over(b.SetupTime)}
}

// TxCost implements Controller.
func (b *Backscatter) TxCost(n int) Cost {
	t := b.SetupTime + b.AirTime(n)
	return Cost{Time: t, Energy: b.ModPower.Over(t)}
}

// RxCost implements Controller: the downlink is decoded from the ambient
// carrier's amplitude, at comparable micro-watt cost.
func (b *Backscatter) RxCost(n int) Cost {
	t := b.SetupTime + b.AirTime(n)
	return Cost{Time: t, Energy: b.ModPower.Over(t)}
}

// SelfStarting implements Controller: the modulator is stateless and
// needs no processor-driven reconfiguration after power loss.
func (b *Backscatter) SelfStarting() bool { return true }
