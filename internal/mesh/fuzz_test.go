package mesh

import (
	"testing"

	"neofog/internal/units"
)

// FuzzRetrySchedule asserts the ARQ backoff plan's safety envelope for
// arbitrary parameters: the schedule never exceeds the retransmission
// budget, its total backoff never exceeds the NVBuffer hold time, waits are
// non-negative and non-decreasing, and Wait() agrees with Total().
func FuzzRetrySchedule(f *testing.F) {
	f.Add(int64(10*units.Millisecond), 3, int64(12*units.Second))
	f.Add(int64(0), 5, int64(0))
	f.Add(int64(-4), 2, int64(100))
	f.Add(int64(1), 62, int64(1)<<62)
	f.Add(int64(1)<<62, 4, int64(1<<63-1))
	f.Fuzz(func(t *testing.T, base int64, retries int, hold int64) {
		if retries > 1<<16 {
			retries %= 1 << 16 // keep the schedule walkable
		}
		s := NewRetrySchedule(units.Duration(base), retries, units.Duration(hold))
		if retries < 0 {
			retries = 0
		}
		if s.Len() > retries {
			t.Fatalf("schedule length %d exceeds retry budget %d", s.Len(), retries)
		}
		if hold >= 0 && int64(s.Total()) > hold {
			t.Fatalf("total backoff %d exceeds hold time %d", int64(s.Total()), hold)
		}
		if hold < 0 && s.Len() != 0 {
			t.Fatalf("negative hold time admitted %d retries", s.Len())
		}
		var sum, prev units.Duration
		for k := 1; k <= s.Len(); k++ {
			w := s.Wait(k)
			if w < 0 {
				t.Fatalf("negative wait %v at attempt %d", w, k)
			}
			if w < prev {
				t.Fatalf("wait %v at attempt %d shrank below %v", w, k, prev)
			}
			sum += w
			prev = w
		}
		if sum != s.Total() {
			t.Fatalf("Wait sum %v disagrees with Total %v", sum, s.Total())
		}
	})
}
