// Package mesh models the network layer of a NEOFog deployment: node
// positions with an RSSI distance model, the Zigbee-style
// locality-preferring greedy routing whose hop count explodes under naive
// densification (Fig. 7), and the chain-mesh relay with orphan-scan
// re-association that the intra-chain systems of Table 1 use.
package mesh

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Position is a node location in metres.
type Position struct{ X, Y float64 }

// Distance is the Euclidean distance between positions.
func (p Position) Distance(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// RSSI converts distance to a received signal strength indicator in dBm
// using log-distance path loss (exponent 2.4, −40 dBm at 1 m). Every data
// packet carries RSSI and it is "used to find the closest neighbors" (§4).
func RSSI(d float64) float64 {
	if d < 0.1 {
		d = 0.1
	}
	return -40 - 10*2.4*math.Log10(d)
}

// ClosestNode returns the index of the node nearest to p (excluding any
// index in skip), using the RSSI ordering. It returns -1 if none qualify.
func ClosestNode(p Position, nodes []Position, skip func(int) bool) int {
	best, bestRSSI := -1, math.Inf(-1)
	for i, q := range nodes {
		if skip != nil && skip(i) {
			continue
		}
		if r := RSSI(p.Distance(q)); r > bestRSSI {
			best, bestRSSI = i, r
		}
	}
	return best
}

// GreedyPath routes from node `from` to node `to` with the
// locality-preferring rule of the deployed Zigbee stack: each hop goes to
// the in-range node with the strongest RSSI among those strictly closer to
// the destination. It returns the hop sequence (excluding `from`,
// including `to`) or an error if routing stalls.
func GreedyPath(nodes []Position, from, to int, radioRange float64) ([]int, error) {
	if from < 0 || to < 0 || from >= len(nodes) || to >= len(nodes) {
		return nil, fmt.Errorf("mesh: path endpoints out of range")
	}
	// The hop sequence is built in a pooled scratch buffer (repeated
	// topology sweeps route thousands of paths); the caller receives an
	// exact-size copy, never pool memory.
	bufp := pathPool.Get().(*[]int)
	defer func() {
		*bufp = (*bufp)[:0] // reset: no hops leak into the next route
		pathPool.Put(bufp)
	}()
	path := (*bufp)[:0]
	cur := from
	for cur != to {
		target := nodes[to]
		curDist := nodes[cur].Distance(target)
		next, nextRSSI := -1, math.Inf(-1)
		for i, q := range nodes {
			if i == cur {
				continue
			}
			d := nodes[cur].Distance(q)
			if d > radioRange {
				continue
			}
			if q.Distance(target) >= curDist {
				continue // not forward progress
			}
			if r := RSSI(d); r > nextRSSI {
				next, nextRSSI = i, r
			}
		}
		if next == -1 {
			return nil, fmt.Errorf("mesh: routing stalled at node %d", cur)
		}
		path = append(path, next)
		cur = next
		if len(path) > 4*len(nodes) {
			return nil, fmt.Errorf("mesh: routing loop detected")
		}
	}
	*bufp = path // retain the grown buffer for the pool
	out := make([]int, len(path))
	copy(out, path)
	return out, nil
}

// pathPool recycles GreedyPath's hop-sequence scratch buffers.
var pathPool = sync.Pool{New: func() interface{} {
	b := make([]int, 0, 64)
	return &b
}}

// LineDeployment places n nodes evenly along a line of the given length —
// the sparse chain of Fig. 7 (nodes 11, 21, …, 101).
func LineDeployment(n int, length float64) []Position {
	if n < 2 {
		panic("mesh: need at least two nodes")
	}
	out := make([]Position, n)
	for i := range out {
		out[i] = Position{X: length * float64(i) / float64(n-1)}
	}
	return out
}

// DensifiedDeployment scatters extra nodes around a line deployment,
// multiplying density by `factor`: the Fig. 7 scenario where added nodes
// fall near, but not on, the original chain. The original n anchors keep
// indices 0..n-1.
func DensifiedDeployment(n int, length float64, factor int, spread float64, rng *rand.Rand) []Position {
	base := LineDeployment(n, length)
	if factor < 2 {
		return base
	}
	out := make([]Position, 0, n*factor)
	out = append(out, base...)
	for i := 0; i < n*(factor-1); i++ {
		x := rng.Float64() * length
		y := (rng.Float64()*2 - 1) * spread
		out = append(out, Position{X: x, Y: y})
	}
	return out
}

// LinkModel is the per-hop packet delivery model: the paper measured a
// 0.75% loss rate between sufficiently powered nodes over 10 days (§4).
type LinkModel struct {
	// SuccessRate is the per-transmission delivery probability.
	SuccessRate float64
}

// DefaultLink is the measured 99.25% link.
func DefaultLink() LinkModel { return LinkModel{SuccessRate: 0.9925} }

// Deliver reports whether one transmission attempt succeeds.
func (l LinkModel) Deliver(rng *rand.Rand) bool {
	return rng.Float64() < l.SuccessRate
}

// WeatherLink varies the per-packet link quality over time: the paper's
// measured 0.75% loss over ten days was "mainly affected by weather,
// especially rain" (§4). Rounds inside [RainStart, RainEnd) use the Rain
// model; all others the Clear one.
type WeatherLink struct {
	Clear, Rain        LinkModel
	RainStart, RainEnd int
}

// At reports the link model in effect at the given round.
func (w WeatherLink) At(round int) LinkModel {
	if round >= w.RainStart && round < w.RainEnd {
		return w.Rain
	}
	return w.Clear
}

// Chain is an ordered chain mesh (node 0 is nearest the sink). Each node
// keeps an AssociatedDevList-style next-hop pointer; when a relay dies of
// energy depletion, its neighbours re-associate around it via the Zigbee
// orphan-scan procedure, and when it recovers they re-adopt it (§4).
type Chain struct {
	n       int
	alive   []bool
	nextHop []int // index of the next node toward the sink; -1 = sink itself
	// Rejoins counts orphan-scan re-association events (each costs the
	// participants a broadcast/unicast exchange).
	Rejoins int
}

// NewChain builds a chain of n all-alive nodes, node 0 adjacent to the sink.
func NewChain(n int) *Chain {
	if n < 1 {
		panic("mesh: empty chain")
	}
	c := &Chain{n: n, alive: make([]bool, n), nextHop: make([]int, n)}
	for i := range c.alive {
		c.alive[i] = true
		c.nextHop[i] = i - 1 // toward the sink
	}
	return c
}

// Len reports the chain length.
func (c *Chain) Len() int { return c.n }

// Alive reports whether node i is alive this period.
func (c *Chain) Alive(i int) bool { return c.alive[i] }

// SetAlive updates node i's liveness, mirroring the paper's §4 protocol:
// death leaves neighbours' AssociatedDevList entries stale (the orphan scan
// only runs when a delivery attempt hits the dead relay), while recovery is
// announced by broadcast, so downstream pointers re-adopt the node eagerly.
func (c *Chain) SetAlive(i int, alive bool) {
	if c.alive[i] == alive {
		return
	}
	c.alive[i] = alive
	if !alive {
		return // stale pointers persist until discovered mid-delivery
	}
	// Recovery: i rebuilds its own route, and every node whose nearest
	// alive predecessor is now i re-adds it (A adds B, removes C).
	c.nextHop[i] = c.aliveBefore(i)
	for j := i + 1; j < c.n; j++ {
		if c.aliveBefore(j) == i && c.nextHop[j] != i {
			c.nextHop[j] = i
			c.Rejoins++
		}
	}
}

// aliveBefore returns the nearest alive node with a lower index, or -1
// (the sink).
func (c *Chain) aliveBefore(i int) int {
	for j := i - 1; j >= 0; j-- {
		if c.alive[j] {
			return j
		}
	}
	return -1
}

// NextHop reports node i's current next hop toward the sink (-1 = sink).
func (c *Chain) NextHop(i int) int { return c.nextHop[i] }

// RouteToSink returns the relay sequence from node i to the sink given the
// current liveness (excluding i, ending at -1).
func (c *Chain) RouteToSink(i int) []int {
	var path []int
	cur := i
	for {
		next := c.nextHop[cur]
		path = append(path, next)
		if next == -1 {
			return path
		}
		cur = next
	}
}

// Deliver attempts to relay one packet from node i to the sink: each hop is
// an independent LinkModel trial, and only alive relays forward. It reports
// the number of transmissions attempted and whether the packet arrived.
func (c *Chain) Deliver(i int, link LinkModel, rng *rand.Rand) (hops int, ok bool) {
	d := c.DeliverDetail(i, link, rng, DeliverOpts{})
	return d.Hops, d.OK
}

// DeliverOpts tunes one DeliverDetail relay attempt. The zero value is the
// original fire-and-forget behaviour: one trial per hop, packets lost at
// the first link failure or dead relay.
type DeliverOpts struct {
	// Retries is the packet's total retransmission budget across all hops
	// (the link-layer ARQ of the recovery layer): a hop whose transmission
	// goes unacknowledged resends instead of dropping, while budget lasts.
	Retries int
	// PayRetry, when non-nil, is consulted before every retransmission with
	// the retrying hop (chain index) and the packet's 1-based retry
	// ordinal. Returning false refuses the retry — the hop cannot afford
	// the resend — and the packet is lost. This is where the simulator
	// charges the rf timing/energy model, so recovery is never free.
	PayRetry func(hop, attempt int) bool
	// RepairRoute extends the orphan scan into full route repair: after
	// re-associating around a dead relay, the holding hop retransmits to
	// its new next hop (consuming one retry) instead of losing the packet.
	RepairRoute bool
	// OnOrphan, when non-nil, is called with the holding hop (chain index)
	// every time a packet dies at a dead relay. Purely observational — it
	// must not mutate the chain or the RNG stream.
	OnOrphan func(hop int)
}

// Delivery is one relay attempt's outcome.
type Delivery struct {
	// Hops counts transmissions attempted, retransmissions included.
	Hops int
	// Retransmits counts the ARQ resends the packet consumed.
	Retransmits int
	// Orphaned reports that the packet died at a dead relay (the
	// orphan-scan re-association ate the in-flight packet). Always false
	// when OK.
	Orphaned bool
	// OK reports arrival at the sink.
	OK bool
}

// DeliverDetail is Deliver with per-hop ARQ and route repair (see
// DeliverOpts) and a full outcome report. With zero opts it performs
// exactly Deliver's trials in the same order.
func (c *Chain) DeliverDetail(i int, link LinkModel, rng *rand.Rand, opts DeliverOpts) Delivery {
	var d Delivery
	if !c.alive[i] {
		return d
	}
	cur := i
	budget := opts.Retries
	for {
		next := c.nextHop[cur]
		sent := false
		for {
			d.Hops++
			if link.Deliver(rng) {
				sent = true
				break
			}
			// No acknowledgement: retransmit while the budget lasts and
			// the hop can pay for the resend, backoff included.
			if budget <= 0 {
				break
			}
			if opts.PayRetry != nil && !opts.PayRetry(cur, d.Retransmits+1) {
				break
			}
			budget--
			d.Retransmits++
		}
		if !sent {
			return d
		}
		if next == -1 {
			d.OK = true
			return d
		}
		if !c.alive[next] {
			// Orphan scan: cur broadcasts, the next alive node toward the
			// sink confirms, and cur's AssociatedDevList skips the dead
			// span. Without route repair the in-flight packet is lost this
			// period; with it, cur resends to the repaired next hop.
			c.nextHop[cur] = c.aliveBefore(cur)
			c.Rejoins++
			if !opts.RepairRoute || budget <= 0 ||
				(opts.PayRetry != nil && !opts.PayRetry(cur, d.Retransmits+1)) {
				if opts.OnOrphan != nil {
					opts.OnOrphan(cur)
				}
				d.Orphaned = true
				return d
			}
			budget--
			d.Retransmits++
			continue
		}
		cur = next
	}
}

// Heal performs the persistent AssociatedDevList healing of the recovery
// layer: every alive node whose next-hop pointer has gone stale (its relay
// died) re-associates around the whole dead span now, instead of waiting to
// discover the corpse mid-delivery and losing the in-flight packet. Each
// repaired pointer is one orphan-scan exchange (counted in Rejoins). It
// returns the number of pointers repaired. Recovered nodes are re-admitted
// by SetAlive's broadcast path as before; Heal is its proactive complement
// for deaths.
func (c *Chain) Heal() int {
	repaired := 0
	for i := 0; i < c.n; i++ {
		if !c.alive[i] {
			continue
		}
		if next := c.nextHop[i]; next != -1 && !c.alive[next] {
			c.nextHop[i] = c.aliveBefore(i)
			c.Rejoins++
			repaired++
		}
	}
	return repaired
}

// AliveNeighbors returns the nearest alive chain neighbours of node i on
// each side (-1 if none) — the peers the distributed load balancer talks to.
func (c *Chain) AliveNeighbors(i int) (left, right int) {
	left, right = -1, -1
	for j := i - 1; j >= 0; j-- {
		if c.alive[j] {
			left = j
			break
		}
	}
	for j := i + 1; j < c.n; j++ {
		if c.alive[j] {
			right = j
			break
		}
	}
	return left, right
}
