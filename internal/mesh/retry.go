package mesh

import "neofog/internal/units"

// RetrySchedule is the energy-aware exponential-backoff plan the link-layer
// ARQ follows: before retransmission k (1-based) the sender waits
// Wait(k) = base·2^(k-1) listening for the missed acknowledgement, so
// congested or rain-degraded periods are probed progressively more gently.
// The schedule is doubly bounded — by the retransmission budget and by the
// hold time (how long the packet may sit in the NVBuffer before its slot's
// work must move on) — so ARQ can never spend more airtime or backlog-hold
// than the round has to give.
type RetrySchedule struct {
	waits []units.Duration
}

// NewRetrySchedule builds the backoff plan: up to `retries` waits starting
// at `base` and doubling, truncated at the first wait whose cumulative
// total would exceed `hold`. A non-positive base yields zero-length waits
// (retransmit immediately); a negative hold forbids retries entirely.
func NewRetrySchedule(base units.Duration, retries int, hold units.Duration) RetrySchedule {
	if base < 0 {
		base = 0
	}
	if retries < 0 {
		retries = 0
	}
	var s RetrySchedule
	var total units.Duration
	wait := base
	for k := 0; k < retries; k++ {
		// total ≤ hold is maintained, so hold-total never underflows; a
		// negative hold fails this check on the first iteration.
		if wait > hold-total {
			break
		}
		s.waits = append(s.waits, wait)
		total += wait
		if wait > maxDuration/2 {
			// Doubling again would overflow; no further wait can fit a
			// finite hold anyway.
			break
		}
		if wait > 0 {
			wait *= 2
		}
	}
	return s
}

// maxDuration is the saturation bound for backoff doubling.
const maxDuration = units.Duration(1<<63 - 1)

// Len is the number of retransmissions the schedule allows.
func (s RetrySchedule) Len() int { return len(s.waits) }

// Wait reports the backoff before retransmission `attempt` (1-based). It
// panics outside [1, Len()].
func (s RetrySchedule) Wait(attempt int) units.Duration {
	if attempt < 1 || attempt > len(s.waits) {
		panic("mesh: retry attempt outside schedule")
	}
	return s.waits[attempt-1]
}

// Total is the summed backoff of the whole schedule — the worst-case time a
// packet is held for ARQ.
func (s RetrySchedule) Total() units.Duration {
	var t units.Duration
	for _, w := range s.waits {
		t += w
	}
	return t
}
