package mesh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRSSIMonotone(t *testing.T) {
	if RSSI(1) <= RSSI(10) || RSSI(10) <= RSSI(100) {
		t.Fatal("RSSI must decrease with distance")
	}
	// Clamp below 0.1 m.
	if RSSI(0.01) != RSSI(0.1) {
		t.Fatal("RSSI should clamp tiny distances")
	}
	if math.Abs(RSSI(1)-(-40)) > 1e-9 {
		t.Fatalf("RSSI(1m) = %v, want -40", RSSI(1))
	}
}

func TestClosestNode(t *testing.T) {
	nodes := []Position{{0, 0}, {5, 0}, {1, 1}}
	got := ClosestNode(Position{0.9, 0.9}, nodes, nil)
	if got != 2 {
		t.Fatalf("ClosestNode = %d, want 2", got)
	}
	got = ClosestNode(Position{0.9, 0.9}, nodes, func(i int) bool { return i == 2 })
	if got != 0 {
		t.Fatalf("ClosestNode with skip = %d, want 0", got)
	}
	if ClosestNode(Position{}, nodes, func(int) bool { return true }) != -1 {
		t.Fatal("all skipped should yield -1")
	}
}

// Figure 7: a sparse 10-node chain routes end-to-end in 9 hops; 4×
// densification with scattered placement inflates the hop count to ~25
// because the locality-preferring protocol hops to the nearest forward
// node.
func TestFigure7Hops(t *testing.T) {
	const length, radioRange = 90, 25
	sparse := LineDeployment(10, length)
	path, err := GreedyPath(sparse, 0, 9, radioRange)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 9 {
		t.Fatalf("sparse chain hops = %d, want 9", len(path))
	}

	rng := rand.New(rand.NewSource(7))
	dense := DensifiedDeployment(10, length, 4, 4, rng)
	if len(dense) != 40 {
		t.Fatalf("densified count = %d, want 40", len(dense))
	}
	densePath, err := GreedyPath(dense, 0, 9, radioRange)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(densePath)) / float64(len(path))
	if ratio < 2 || ratio > 3.9 {
		t.Fatalf("densified hops = %d (ratio %.2f), want ~2.8× of 9 (paper: 25)",
			len(densePath), ratio)
	}
	t.Logf("Fig. 7: sparse 9 hops, dense %d hops (paper: 25)", len(densePath))
}

func TestGreedyPathErrors(t *testing.T) {
	nodes := []Position{{0, 0}, {100, 0}}
	if _, err := GreedyPath(nodes, 0, 1, 10); err == nil {
		t.Fatal("out-of-range hop should stall")
	}
	if _, err := GreedyPath(nodes, -1, 1, 10); err == nil {
		t.Fatal("bad endpoint should error")
	}
}

func TestLineDeployment(t *testing.T) {
	nodes := LineDeployment(5, 100)
	if nodes[0].X != 0 || nodes[4].X != 100 || nodes[2].X != 50 {
		t.Fatalf("LineDeployment = %+v", nodes)
	}
}

func TestLinkModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	link := DefaultLink()
	n, ok := 100000, 0
	for i := 0; i < n; i++ {
		if link.Deliver(rng) {
			ok++
		}
	}
	rate := float64(ok) / float64(n)
	if math.Abs(rate-0.9925) > 0.002 {
		t.Fatalf("delivery rate = %v, want ≈0.9925", rate)
	}
}

func TestChainRouting(t *testing.T) {
	c := NewChain(5)
	route := c.RouteToSink(4)
	want := []int{3, 2, 1, 0, -1}
	if len(route) != len(want) {
		t.Fatalf("route = %v", route)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("route = %v, want %v", route, want)
		}
	}
}

func TestChainOrphanScan(t *testing.T) {
	c := NewChain(4) // 3 → 2 → 1 → 0 → sink
	perfect := LinkModel{SuccessRate: 1}
	rng := rand.New(rand.NewSource(2))

	// Kill node 1: node 2's pointer is stale; first delivery from 3 fails
	// at the discovery, repairing 2 → 0.
	c.SetAlive(1, false)
	if c.NextHop(2) != 1 {
		t.Fatal("death must leave the pointer stale until discovered")
	}
	_, ok := c.Deliver(3, perfect, rng)
	if ok {
		t.Fatal("first delivery through a dead relay must fail")
	}
	if c.NextHop(2) != 0 {
		t.Fatalf("orphan scan should re-route 2 → 0, got %d", c.NextHop(2))
	}
	if c.Rejoins == 0 {
		t.Fatal("rejoin not counted")
	}
	// Second delivery now skips node 1: A→C.
	hops, ok := c.Deliver(3, perfect, rng)
	if !ok || hops != 3 {
		t.Fatalf("post-repair delivery hops=%d ok=%v, want 3 hops", hops, ok)
	}

	// Recovery: B broadcasts, node 2 re-adds it: A→B→C again.
	c.SetAlive(1, true)
	if c.NextHop(2) != 1 || c.NextHop(1) != 0 {
		t.Fatalf("recovery should restore routing: next(2)=%d next(1)=%d",
			c.NextHop(2), c.NextHop(1))
	}
	hops, ok = c.Deliver(3, perfect, rng)
	if !ok || hops != 4 {
		t.Fatalf("restored delivery hops=%d ok=%v, want 4", hops, ok)
	}
}

func TestChainDeadSourceCannotSend(t *testing.T) {
	c := NewChain(3)
	c.SetAlive(2, false)
	if _, ok := c.Deliver(2, LinkModel{SuccessRate: 1}, rand.New(rand.NewSource(3))); ok {
		t.Fatal("dead node must not transmit")
	}
}

func TestChainLossyLink(t *testing.T) {
	c := NewChain(10)
	rng := rand.New(rand.NewSource(4))
	lossy := LinkModel{SuccessRate: 0.5}
	delivered := 0
	const tries = 2000
	for i := 0; i < tries; i++ {
		if _, ok := c.Deliver(9, lossy, rng); ok {
			delivered++
		}
	}
	// 10 hops at 50% each ≈ 0.098% end-to-end.
	rate := float64(delivered) / tries
	if rate > 0.01 {
		t.Fatalf("end-to-end rate %v too high for 0.5^10", rate)
	}
}

func TestAliveNeighbors(t *testing.T) {
	c := NewChain(5)
	c.SetAlive(1, false)
	c.SetAlive(3, false)
	l, r := c.AliveNeighbors(2)
	if l != 0 || r != 4 {
		t.Fatalf("neighbors of 2 = (%d,%d), want (0,4)", l, r)
	}
	l, r = c.AliveNeighbors(0)
	if l != -1 || r != 2 {
		t.Fatalf("neighbors of 0 = (%d,%d), want (-1,2)", l, r)
	}
	l, r = c.AliveNeighbors(4)
	if l != 2 || r != -1 {
		t.Fatalf("neighbors of 4 = (%d,%d), want (2,-1)", l, r)
	}
}

// Property: after any liveness churn, every alive node's eventual route
// reaches the sink in at most n transmissions once repairs settle.
func TestChainRoutingConverges(t *testing.T) {
	f := func(ops []uint8) bool {
		c := NewChain(8)
		rng := rand.New(rand.NewSource(99))
		perfect := LinkModel{SuccessRate: 1}
		for _, op := range ops {
			i := int(op % 8)
			c.SetAlive(i, op%2 == 0)
		}
		for i := 0; i < 8; i++ {
			if !c.Alive(i) {
				continue
			}
			// At most n repair-failures before a clean route emerges.
			ok := false
			for try := 0; try < 9 && !ok; try++ {
				_, ok = c.Deliver(i, perfect, rng)
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDensifiedKeepsAnchors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := DensifiedDeployment(10, 90, 4, 4, rng)
	base := LineDeployment(10, 90)
	for i := range base {
		if d[i] != base[i] {
			t.Fatalf("anchor %d moved", i)
		}
	}
	// factor < 2 returns the plain line.
	if got := DensifiedDeployment(10, 90, 1, 4, rng); len(got) != 10 {
		t.Fatal("factor 1 should return the base deployment")
	}
}

func TestWeatherLink(t *testing.T) {
	w := WeatherLink{
		Clear:     LinkModel{SuccessRate: 0.9925},
		Rain:      LinkModel{SuccessRate: 0.90},
		RainStart: 100, RainEnd: 200,
	}
	if w.At(99) != w.Clear || w.At(200) != w.Clear {
		t.Fatal("outside the window should be clear")
	}
	if w.At(100) != w.Rain || w.At(199) != w.Rain {
		t.Fatal("inside the window should be rain")
	}
}

// ARQ: with a retry budget, a transiently lossy hop delivers on the
// resend instead of dropping, and the retransmission is accounted.
func TestDeliverDetailARQRecovers(t *testing.T) {
	c := NewChain(3)
	// A 50% link loses plenty of first trials; ARQ with a generous budget
	// should deliver essentially everything.
	link := LinkModel{SuccessRate: 0.5}
	rng := rand.New(rand.NewSource(7))
	delivered, retx := 0, 0
	for i := 0; i < 500; i++ {
		d := c.DeliverDetail(2, link, rng, DeliverOpts{Retries: 10})
		if d.OK {
			delivered++
		}
		retx += d.Retransmits
	}
	if delivered < 490 {
		t.Fatalf("ARQ delivered %d/500 on a 50%% link with budget 10", delivered)
	}
	if retx == 0 {
		t.Fatal("ARQ delivered everything without a single retransmission")
	}
}

// A refused retry (the hop cannot afford it) loses the packet exactly as
// an exhausted budget does, and PayRetry sees 1-based ordinals.
func TestDeliverDetailPayRetryRefusal(t *testing.T) {
	c := NewChain(2)
	link := LinkModel{SuccessRate: 0} // every trial fails
	rng := rand.New(rand.NewSource(1))
	var ordinals []int
	d := c.DeliverDetail(1, link, rng, DeliverOpts{
		Retries: 5,
		PayRetry: func(hop, attempt int) bool {
			if hop != 1 {
				t.Fatalf("retrying hop = %d, want 1", hop)
			}
			ordinals = append(ordinals, attempt)
			return attempt < 3 // afford two retries, refuse the third
		},
	})
	if d.OK || d.Retransmits != 2 || d.Hops != 3 {
		t.Fatalf("refused retry: %+v, want lost after 2 retransmits / 3 hops", d)
	}
	if len(ordinals) != 3 || ordinals[0] != 1 || ordinals[2] != 3 {
		t.Fatalf("PayRetry ordinals = %v, want [1 2 3]", ordinals)
	}
}

// Route repair: a packet that hits a dead relay is resent around the whole
// dead span instead of being lost, consuming one retry.
func TestDeliverDetailRouteRepair(t *testing.T) {
	c := NewChain(5)
	c.SetAlive(3, false)
	c.SetAlive(2, false) // multi-node dead span between 4 and 1
	link := LinkModel{SuccessRate: 1}
	rng := rand.New(rand.NewSource(1))

	// Without repair the stale pointer eats the packet.
	d := c.DeliverDetail(4, link, rng, DeliverOpts{})
	if d.OK || !d.Orphaned {
		t.Fatalf("no-repair delivery = %+v, want orphaned loss", d)
	}

	// Reset the chain (pointers were repaired by the orphan scan above).
	c = NewChain(5)
	c.SetAlive(3, false)
	c.SetAlive(2, false)
	d = c.DeliverDetail(4, link, rng, DeliverOpts{Retries: 2, RepairRoute: true})
	if !d.OK || d.Retransmits != 1 || d.Orphaned {
		t.Fatalf("repair delivery = %+v, want delivered with 1 retransmit", d)
	}
	if c.NextHop(4) != 1 {
		t.Fatalf("NextHop(4) = %d after repair, want 1 (around the dead span)", c.NextHop(4))
	}
}

// Heal repairs every stale pointer proactively so no later delivery hits a
// corpse, and re-admitted nodes are re-adopted by SetAlive as before.
func TestChainHeal(t *testing.T) {
	c := NewChain(6)
	c.SetAlive(2, false)
	c.SetAlive(3, false)
	if n := c.Heal(); n != 1 {
		t.Fatalf("Heal repaired %d pointers, want 1 (node 4's)", n)
	}
	if c.NextHop(4) != 1 {
		t.Fatalf("NextHop(4) = %d after heal, want 1", c.NextHop(4))
	}
	if n := c.Heal(); n != 0 {
		t.Fatalf("second Heal repaired %d pointers, want 0", n)
	}
	// Delivery over the healed chain never orphans.
	rng := rand.New(rand.NewSource(3))
	d := c.DeliverDetail(5, LinkModel{SuccessRate: 1}, rng, DeliverOpts{})
	if !d.OK || d.Orphaned {
		t.Fatalf("healed delivery = %+v, want clean arrival", d)
	}
	// Recovery re-admission still works.
	c.SetAlive(3, true)
	if c.NextHop(4) != 3 {
		t.Fatalf("NextHop(4) = %d after re-admission, want 3", c.NextHop(4))
	}
}

// Zero-valued DeliverOpts reproduces Deliver's trials bit-for-bit.
func TestDeliverDetailZeroOptsMatchesDeliver(t *testing.T) {
	prop := func(seed int64) bool {
		a := NewChain(6)
		b := NewChain(6)
		for _, dead := range []int{2, 4} {
			a.SetAlive(dead, false)
			b.SetAlive(dead, false)
		}
		link := LinkModel{SuccessRate: 0.8}
		rngA := rand.New(rand.NewSource(seed))
		rngB := rand.New(rand.NewSource(seed))
		for i := 0; i < 40; i++ {
			hops, ok := a.Deliver(5, link, rngA)
			d := b.DeliverDetail(5, link, rngB, DeliverOpts{})
			if hops != d.Hops || ok != d.OK {
				return false
			}
		}
		return a.Rejoins == b.Rejoins
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// The retry schedule is doubly bounded and exponential.
func TestRetrySchedule(t *testing.T) {
	s := NewRetrySchedule(10, 4, 1000)
	if s.Len() != 4 || s.Wait(1) != 10 || s.Wait(2) != 20 || s.Wait(4) != 80 {
		t.Fatalf("schedule = %d waits, %v %v ... %v", s.Len(), s.Wait(1), s.Wait(2), s.Wait(s.Len()))
	}
	if s.Total() != 150 {
		t.Fatalf("Total = %v, want 150", s.Total())
	}
	// The hold bound truncates: 10+20+40 = 70 fits a 75-tick hold, 80 not.
	if s := NewRetrySchedule(10, 10, 75); s.Len() != 3 || s.Total() != 70 {
		t.Fatalf("held schedule = %d waits / %v total, want 3 / 70", s.Len(), s.Total())
	}
	// Zero base: immediate retransmits up to the budget.
	if s := NewRetrySchedule(0, 3, 0); s.Len() != 3 || s.Total() != 0 {
		t.Fatalf("free schedule = %d waits / %v total, want 3 / 0", s.Len(), s.Total())
	}
	// Negative hold forbids retries.
	if s := NewRetrySchedule(10, 3, -1); s.Len() != 0 {
		t.Fatalf("negative hold allowed %d retries", s.Len())
	}
}
