package mesh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRSSIMonotone(t *testing.T) {
	if RSSI(1) <= RSSI(10) || RSSI(10) <= RSSI(100) {
		t.Fatal("RSSI must decrease with distance")
	}
	// Clamp below 0.1 m.
	if RSSI(0.01) != RSSI(0.1) {
		t.Fatal("RSSI should clamp tiny distances")
	}
	if math.Abs(RSSI(1)-(-40)) > 1e-9 {
		t.Fatalf("RSSI(1m) = %v, want -40", RSSI(1))
	}
}

func TestClosestNode(t *testing.T) {
	nodes := []Position{{0, 0}, {5, 0}, {1, 1}}
	got := ClosestNode(Position{0.9, 0.9}, nodes, nil)
	if got != 2 {
		t.Fatalf("ClosestNode = %d, want 2", got)
	}
	got = ClosestNode(Position{0.9, 0.9}, nodes, func(i int) bool { return i == 2 })
	if got != 0 {
		t.Fatalf("ClosestNode with skip = %d, want 0", got)
	}
	if ClosestNode(Position{}, nodes, func(int) bool { return true }) != -1 {
		t.Fatal("all skipped should yield -1")
	}
}

// Figure 7: a sparse 10-node chain routes end-to-end in 9 hops; 4×
// densification with scattered placement inflates the hop count to ~25
// because the locality-preferring protocol hops to the nearest forward
// node.
func TestFigure7Hops(t *testing.T) {
	const length, radioRange = 90, 25
	sparse := LineDeployment(10, length)
	path, err := GreedyPath(sparse, 0, 9, radioRange)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 9 {
		t.Fatalf("sparse chain hops = %d, want 9", len(path))
	}

	rng := rand.New(rand.NewSource(7))
	dense := DensifiedDeployment(10, length, 4, 4, rng)
	if len(dense) != 40 {
		t.Fatalf("densified count = %d, want 40", len(dense))
	}
	densePath, err := GreedyPath(dense, 0, 9, radioRange)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(densePath)) / float64(len(path))
	if ratio < 2 || ratio > 3.9 {
		t.Fatalf("densified hops = %d (ratio %.2f), want ~2.8× of 9 (paper: 25)",
			len(densePath), ratio)
	}
	t.Logf("Fig. 7: sparse 9 hops, dense %d hops (paper: 25)", len(densePath))
}

func TestGreedyPathErrors(t *testing.T) {
	nodes := []Position{{0, 0}, {100, 0}}
	if _, err := GreedyPath(nodes, 0, 1, 10); err == nil {
		t.Fatal("out-of-range hop should stall")
	}
	if _, err := GreedyPath(nodes, -1, 1, 10); err == nil {
		t.Fatal("bad endpoint should error")
	}
}

func TestLineDeployment(t *testing.T) {
	nodes := LineDeployment(5, 100)
	if nodes[0].X != 0 || nodes[4].X != 100 || nodes[2].X != 50 {
		t.Fatalf("LineDeployment = %+v", nodes)
	}
}

func TestLinkModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	link := DefaultLink()
	n, ok := 100000, 0
	for i := 0; i < n; i++ {
		if link.Deliver(rng) {
			ok++
		}
	}
	rate := float64(ok) / float64(n)
	if math.Abs(rate-0.9925) > 0.002 {
		t.Fatalf("delivery rate = %v, want ≈0.9925", rate)
	}
}

func TestChainRouting(t *testing.T) {
	c := NewChain(5)
	route := c.RouteToSink(4)
	want := []int{3, 2, 1, 0, -1}
	if len(route) != len(want) {
		t.Fatalf("route = %v", route)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("route = %v, want %v", route, want)
		}
	}
}

func TestChainOrphanScan(t *testing.T) {
	c := NewChain(4) // 3 → 2 → 1 → 0 → sink
	perfect := LinkModel{SuccessRate: 1}
	rng := rand.New(rand.NewSource(2))

	// Kill node 1: node 2's pointer is stale; first delivery from 3 fails
	// at the discovery, repairing 2 → 0.
	c.SetAlive(1, false)
	if c.NextHop(2) != 1 {
		t.Fatal("death must leave the pointer stale until discovered")
	}
	_, ok := c.Deliver(3, perfect, rng)
	if ok {
		t.Fatal("first delivery through a dead relay must fail")
	}
	if c.NextHop(2) != 0 {
		t.Fatalf("orphan scan should re-route 2 → 0, got %d", c.NextHop(2))
	}
	if c.Rejoins == 0 {
		t.Fatal("rejoin not counted")
	}
	// Second delivery now skips node 1: A→C.
	hops, ok := c.Deliver(3, perfect, rng)
	if !ok || hops != 3 {
		t.Fatalf("post-repair delivery hops=%d ok=%v, want 3 hops", hops, ok)
	}

	// Recovery: B broadcasts, node 2 re-adds it: A→B→C again.
	c.SetAlive(1, true)
	if c.NextHop(2) != 1 || c.NextHop(1) != 0 {
		t.Fatalf("recovery should restore routing: next(2)=%d next(1)=%d",
			c.NextHop(2), c.NextHop(1))
	}
	hops, ok = c.Deliver(3, perfect, rng)
	if !ok || hops != 4 {
		t.Fatalf("restored delivery hops=%d ok=%v, want 4", hops, ok)
	}
}

func TestChainDeadSourceCannotSend(t *testing.T) {
	c := NewChain(3)
	c.SetAlive(2, false)
	if _, ok := c.Deliver(2, LinkModel{SuccessRate: 1}, rand.New(rand.NewSource(3))); ok {
		t.Fatal("dead node must not transmit")
	}
}

func TestChainLossyLink(t *testing.T) {
	c := NewChain(10)
	rng := rand.New(rand.NewSource(4))
	lossy := LinkModel{SuccessRate: 0.5}
	delivered := 0
	const tries = 2000
	for i := 0; i < tries; i++ {
		if _, ok := c.Deliver(9, lossy, rng); ok {
			delivered++
		}
	}
	// 10 hops at 50% each ≈ 0.098% end-to-end.
	rate := float64(delivered) / tries
	if rate > 0.01 {
		t.Fatalf("end-to-end rate %v too high for 0.5^10", rate)
	}
}

func TestAliveNeighbors(t *testing.T) {
	c := NewChain(5)
	c.SetAlive(1, false)
	c.SetAlive(3, false)
	l, r := c.AliveNeighbors(2)
	if l != 0 || r != 4 {
		t.Fatalf("neighbors of 2 = (%d,%d), want (0,4)", l, r)
	}
	l, r = c.AliveNeighbors(0)
	if l != -1 || r != 2 {
		t.Fatalf("neighbors of 0 = (%d,%d), want (-1,2)", l, r)
	}
	l, r = c.AliveNeighbors(4)
	if l != 2 || r != -1 {
		t.Fatalf("neighbors of 4 = (%d,%d), want (2,-1)", l, r)
	}
}

// Property: after any liveness churn, every alive node's eventual route
// reaches the sink in at most n transmissions once repairs settle.
func TestChainRoutingConverges(t *testing.T) {
	f := func(ops []uint8) bool {
		c := NewChain(8)
		rng := rand.New(rand.NewSource(99))
		perfect := LinkModel{SuccessRate: 1}
		for _, op := range ops {
			i := int(op % 8)
			c.SetAlive(i, op%2 == 0)
		}
		for i := 0; i < 8; i++ {
			if !c.Alive(i) {
				continue
			}
			// At most n repair-failures before a clean route emerges.
			ok := false
			for try := 0; try < 9 && !ok; try++ {
				_, ok = c.Deliver(i, perfect, rng)
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDensifiedKeepsAnchors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := DensifiedDeployment(10, 90, 4, 4, rng)
	base := LineDeployment(10, 90)
	for i := range base {
		if d[i] != base[i] {
			t.Fatalf("anchor %d moved", i)
		}
	}
	// factor < 2 returns the plain line.
	if got := DensifiedDeployment(10, 90, 1, 4, rng); len(got) != 10 {
		t.Fatal("factor 1 should return the base deployment")
	}
}

func TestWeatherLink(t *testing.T) {
	w := WeatherLink{
		Clear:     LinkModel{SuccessRate: 0.9925},
		Rain:      LinkModel{SuccessRate: 0.90},
		RainStart: 100, RainEnd: 200,
	}
	if w.At(99) != w.Clear || w.At(200) != w.Clear {
		t.Fatal("outside the window should be clear")
	}
	if w.At(100) != w.Rain || w.At(199) != w.Rain {
		t.Fatal("inside the window should be rain")
	}
}
