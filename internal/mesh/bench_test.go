package mesh

import (
	"math/rand"
	"testing"
)

func BenchmarkGreedyPathDense(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	dense := DensifiedDeployment(10, 90, 4, 4, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GreedyPath(dense, 0, 9, 25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainDeliver(b *testing.B) {
	c := NewChain(100)
	rng := rand.New(rand.NewSource(1))
	link := DefaultLink()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Deliver(99, link, rng)
	}
}
