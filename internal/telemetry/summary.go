package telemetry

import (
	"strconv"

	"neofog/internal/metrics"
)

// SummaryTable renders the metrics registry as the repo's standard text
// table: counters, gauges and histograms in sorted name order, then the
// trace/timeline volume. Safe on a nil recorder (an empty table).
func (r *Recorder) SummaryTable() *metrics.Table {
	t := metrics.NewTable("Telemetry summary", "Metric", "Kind", "Count", "Value")
	if r == nil {
		return t
	}
	for _, name := range r.CounterNames() {
		t.AddRow(name, "counter", strconv.FormatInt(r.counters[name], 10), "")
	}
	for _, name := range r.GaugeNames() {
		t.AddRow(name, "gauge", "", metrics.Ftoa(sanitizeValue(r.gauges[name]), 4))
	}
	for _, name := range r.HistNames() {
		h := r.hists[name]
		t.AddRow(name, "histogram", strconv.FormatInt(h.N, 10),
			"mean "+metrics.Ftoa(sanitizeValue(h.Mean()), 3))
	}
	t.AddRow("trace.events", "trace", strconv.Itoa(len(r.events)), "")
	t.AddRow("timeline.samples", "trace", strconv.Itoa(len(r.samples)), "")
	return t
}
