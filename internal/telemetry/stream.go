package telemetry

// Streaming sink support: a Recorder normally accumulates and exports
// after the run, but a long-running service wants to watch a simulation's
// phase spans and per-node samples while it executes. A Sink receives
// every record at the moment it is recorded, in recording order — the
// same order the batch exports see — so a stream consumer observes
// exactly the prefix of what the final trace will contain.
//
// The sink is an observer of the observer: it must not feed back into the
// simulation, and attaching one changes neither the recorder's contents
// nor the run's results. Sink callbacks run on the simulating goroutine,
// so implementations must be fast and must do their own synchronization
// if they hand records to other goroutines (the serve package's SSE
// broadcaster does exactly that).

// Sink receives telemetry records as they are recorded.
type Sink interface {
	// OnEvent is called for every Span and Instant, after the event has
	// been appended to the recorder.
	OnEvent(Event)
	// OnSample is called for every timeline Sample, after it has been
	// appended to the recorder.
	OnSample(Sample)
}

// SetSink attaches a streaming sink to the recorder (nil detaches). Safe
// on a nil recorder. Records forwarded to the sink are exactly those the
// recorder itself keeps: direct Span/Instant/Sample calls as they happen,
// and merged children's records at MergeNext time, re-tagged with their
// assigned chain — so a fleet streams chain by chain, in the same order
// the batch exports would present.
func (r *Recorder) SetSink(s Sink) {
	if r == nil {
		return
	}
	r.sink = s
}
