// Package telemetry is the simulator's deterministic observability layer:
// a typed metrics registry (counters, gauges, fixed-bucket histograms),
// span-style event tracing of node phases keyed to RTC slot time, and
// per-node energy/backlog timeline sampling. Nothing here reads the wall
// clock or any RNG — every recorded value is a pure function of the
// simulation — so two runs from the same seed produce byte-identical
// exports (trace.go, timeline.go, summary.go).
//
// The Recorder is nil-safe: every method on a nil *Recorder returns
// immediately without allocating, which is how the simulator meets its
// overhead contract — telemetry off (a nil recorder) leaves the hot path
// untouched and the Result bit-identical to an unobserved run. Telemetry
// observes, never perturbs: a Recorder must never feed back into any
// simulation decision.
package telemetry

import (
	"fmt"
	"sort"

	"neofog/internal/units"
)

// Phase tags what a node (or the balancer track) was doing during a span.
type Phase uint8

// The traced phases of one RTC slot, in the order they occur within it.
const (
	PhaseHarvest Phase = iota
	PhaseWake
	PhaseSense
	PhaseFog
	PhaseCompress
	PhaseBalance
	PhaseTx
	PhaseRetry
	PhaseFailover
	PhaseOrphan
)

var phaseNames = [...]string{
	"harvest", "wake", "sense", "fog-compute", "compress",
	"balance", "tx", "retry", "failover", "orphan",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Kind distinguishes duration spans from point events.
type Kind uint8

// Event kinds.
const (
	KindSpan Kind = iota
	KindInstant
)

// Event is one trace record. Start and Dur are simulated RTC time, not
// wall clock; Track is a per-chain lane (physical node index, or the
// balancer lane one past the last node); Value carries one phase-specific
// scalar (income mW, payload bytes, retry ordinal, moved tasks, ...).
type Event struct {
	Chain int
	Track int
	Phase Phase
	Kind  Kind
	Start units.Duration
	Dur   units.Duration
	Value float64
}

// Sample is one per-node timeline point: the node's stored energy and its
// logical slot's backlog at the end of a round.
type Sample struct {
	Chain   int
	Node    int
	Round   int
	Time    units.Duration
	Stored  units.Energy
	Backlog int
	Awake   bool
}

// DefaultBounds are the fixed histogram bucket upper bounds used when a
// histogram is first observed without explicit registration. The final
// (overflow) bucket is implicit.
var DefaultBounds = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// Histogram is a fixed-bucket histogram; buckets never change after
// creation, so merging and export stay deterministic.
type Histogram struct {
	// Bounds are ascending upper bounds; Counts has one extra overflow
	// bucket at the end.
	Bounds []float64
	Counts []int64
	Sum    float64
	N      int64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{Bounds: b, Counts: make([]int64, len(b)+1)}
}

// Observe adds one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.Bounds, v)
	h.Counts[i]++
	h.Sum += v
	h.N++
}

// Mean is the running average of observed values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts,
// interpolating linearly inside the winning bucket — the same estimator
// Prometheus's histogram_quantile uses, so dashboards and the serve
// bench harness agree on what "p99" means. The first bucket interpolates
// from 0; observations past the last bound are clamped to it (a
// fixed-bucket histogram cannot know its true maximum). Returns 0 when
// empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.N == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.N)
	var cum float64
	for i, c := range h.Counts {
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(h.Bounds) {
			return h.Bounds[len(h.Bounds)-1] // overflow bucket: clamp
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		within := (rank - (cum - float64(c))) / float64(c)
		return lo + (hi-lo)*within
	}
	return h.Bounds[len(h.Bounds)-1]
}

func (h *Histogram) merge(o *Histogram) {
	for i := range h.Counts {
		if i < len(o.Counts) {
			h.Counts[i] += o.Counts[i]
		}
	}
	h.Sum += o.Sum
	h.N += o.N
}

type trackKey struct{ chain, track int }

// Recorder accumulates one run's (or one fleet's) telemetry. It is not
// safe for concurrent use: a fleet gives each chain its own Recorder and
// merges them in input order afterwards (MergeNext), which is what keeps
// multi-chain telemetry deterministic.
type Recorder struct {
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*Histogram
	events   []Event
	samples  []Sample
	tracks   map[trackKey]string
	chains   int
	sink     Sink
}

// New builds an empty Recorder.
func New() *Recorder {
	return &Recorder{
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		hists:    map[string]*Histogram{},
		tracks:   map[trackKey]string{},
	}
}

// Enabled reports whether the recorder is live; it is the idiomatic guard
// around recording code whose argument preparation itself costs something.
func (r *Recorder) Enabled() bool { return r != nil }

// Count adds delta to a named monotone counter.
func (r *Recorder) Count(name string, delta int64) {
	if r == nil {
		return
	}
	r.counters[name] += delta
}

// Counter reads a counter (0 if never written).
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	return r.counters[name]
}

// SetGauge records the latest value of a named gauge.
func (r *Recorder) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.gauges[name] = v
}

// Gauge reads a gauge and whether it was ever set.
func (r *Recorder) Gauge(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	v, ok := r.gauges[name]
	return v, ok
}

// Observe adds a value to a named histogram, creating it with
// DefaultBounds on first use; RegisterHistogram first for custom buckets.
func (r *Recorder) Observe(name string, v float64) {
	if r == nil {
		return
	}
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(DefaultBounds)
		r.hists[name] = h
	}
	h.Observe(v)
}

// RegisterHistogram creates (or returns) a histogram with explicit
// ascending bucket bounds.
func (r *Recorder) RegisterHistogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := newHistogram(bounds)
	r.hists[name] = h
	return h
}

// Hist reads a histogram (nil if never observed).
func (r *Recorder) Hist(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.hists[name]
}

// Track names a trace lane (a physical node, or the balancer).
func (r *Recorder) Track(id int, label string) {
	if r == nil {
		return
	}
	r.tracks[trackKey{0, id}] = label
}

// Span records a duration event on a track.
func (r *Recorder) Span(track int, phase Phase, start, dur units.Duration, value float64) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{Track: track, Phase: phase, Kind: KindSpan,
		Start: start, Dur: dur, Value: value})
	if r.sink != nil {
		r.sink.OnEvent(r.events[len(r.events)-1])
	}
}

// Instant records a point event on a track.
func (r *Recorder) Instant(track int, phase Phase, at units.Duration, value float64) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{Track: track, Phase: phase, Kind: KindInstant,
		Start: at, Value: value})
	if r.sink != nil {
		r.sink.OnEvent(r.events[len(r.events)-1])
	}
}

// Sample records one per-node timeline point.
func (r *Recorder) Sample(round, node int, at units.Duration, stored units.Energy, backlog int, awake bool) {
	if r == nil {
		return
	}
	r.samples = append(r.samples, Sample{Node: node, Round: round, Time: at,
		Stored: stored, Backlog: backlog, Awake: awake})
	if r.sink != nil {
		r.sink.OnSample(r.samples[len(r.samples)-1])
	}
}

// Events returns the recorded events in recording order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Samples returns the recorded timeline points in recording order.
func (r *Recorder) Samples() []Sample {
	if r == nil {
		return nil
	}
	return r.samples
}

// CounterNames returns the counter names in sorted (deterministic) order.
func (r *Recorder) CounterNames() []string { return sortedKeys(r.counters) }

// GaugeNames returns the gauge names in sorted order.
func (r *Recorder) GaugeNames() []string { return sortedKeys(r.gauges) }

// HistNames returns the histogram names in sorted order.
func (r *Recorder) HistNames() []string { return sortedKeys(r.hists) }

func sortedKeys[V any](m map[string]V) []string {
	if m == nil {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// chainSpan is how many chain slots this recorder occupies when merged
// into a parent: at least one (its own direct recordings), or however many
// chains it has itself absorbed.
func (r *Recorder) chainSpan() int {
	if r.chains > 1 {
		return r.chains
	}
	return 1
}

// MergeNext folds a child recorder into r as the next chain(s), assigning
// chain ids in call order — RunFleet merges per-chain recorders in input
// order, so a fleet's telemetry reads exactly as if the chains had run
// serially. Counters and histograms are summed, gauges are overwritten in
// merge order, and events, samples and track labels are re-tagged with the
// assigned chain id. It returns the base chain id the child received.
// A recorder should either record directly (chain 0) or aggregate merges,
// not both.
func (r *Recorder) MergeNext(child *Recorder) int {
	if r == nil || child == nil {
		return 0
	}
	base := r.chains
	r.chains = base + child.chainSpan()
	for _, e := range child.events {
		e.Chain += base
		r.events = append(r.events, e)
		if r.sink != nil {
			r.sink.OnEvent(e)
		}
	}
	for _, s := range child.samples {
		s.Chain += base
		r.samples = append(r.samples, s)
		if r.sink != nil {
			r.sink.OnSample(s)
		}
	}
	for k, label := range child.tracks {
		r.tracks[trackKey{k.chain + base, k.track}] = label
	}
	for _, name := range child.CounterNames() {
		r.counters[name] += child.counters[name]
	}
	for _, name := range child.GaugeNames() {
		r.gauges[name] = child.gauges[name]
	}
	for _, name := range child.HistNames() {
		ch := child.hists[name]
		h, ok := r.hists[name]
		if !ok {
			h = newHistogram(ch.Bounds)
			r.hists[name] = h
		}
		h.merge(ch)
	}
	return base
}
