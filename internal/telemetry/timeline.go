package telemetry

import (
	"io"
	"strconv"
	"strings"
)

// timelineHeader is the CSV schema of the per-node timeline export: one
// row per physical node per round, sampled at slot end.
const timelineHeader = "chain,node,round,time_s,stored_mj,backlog,awake"

// WriteTimelineCSV exports the recorded per-node energy & backlog timeline
// as CSV. Rows appear in recording order (round-major within a chain,
// chains in merge order), so the export is byte-identical across runs from
// the same seed. Floats use the shortest round-trip representation.
func (r *Recorder) WriteTimelineCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(timelineHeader)
	b.WriteByte('\n')
	if r != nil {
		for _, s := range r.samples {
			b.WriteString(strconv.Itoa(s.Chain))
			b.WriteByte(',')
			b.WriteString(strconv.Itoa(s.Node))
			b.WriteByte(',')
			b.WriteString(strconv.Itoa(s.Round))
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(sanitizeValue(s.Time.Seconds()), 'g', -1, 64))
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(sanitizeValue(s.Stored.Millijoules()), 'g', -1, 64))
			b.WriteByte(',')
			b.WriteString(strconv.Itoa(s.Backlog))
			b.WriteByte(',')
			if s.Awake {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
			b.WriteByte('\n')
			if b.Len() >= 1<<16 {
				if _, err := io.WriteString(w, b.String()); err != nil {
					return err
				}
				b.Reset()
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
