package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"strconv"
)

// The Chrome trace-event exporter: the recorded spans and instants load
// directly in chrome://tracing or https://ui.perfetto.dev. Chains map to
// trace processes (pid), tracks to threads (tid), and timestamps are the
// simulation's RTC slot time in microseconds — units.Duration's native
// resolution, and exactly the unit the trace-event format wants.

// traceEvent is one entry of the trace-event JSON array.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// sanitizeValue keeps exports valid JSON whatever was recorded:
// encoding/json refuses NaN and ±Inf, so they are clamped here rather than
// poisoning the whole trace.
func sanitizeValue(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	if math.IsInf(v, 1) {
		return math.MaxFloat64
	}
	if math.IsInf(v, -1) {
		return -math.MaxFloat64
	}
	return v
}

// WriteChromeTrace exports the recorded events as Chrome trace-event JSON.
// Events are emitted sorted by (chain, track, start, recording order), so
// per-track timestamps are monotone non-decreasing and the output is a
// pure function of the recorded sequence.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	var out traceFile
	out.DisplayTimeUnit = "ms"
	out.TraceEvents = []traceEvent{} // never null, even for a nil recorder

	if r != nil {
		// Metadata first: process (chain) and thread (track) names.
		chains := map[int]bool{}
		for _, e := range r.events {
			chains[e.Chain] = true
		}
		for _, s := range r.samples {
			chains[s.Chain] = true
		}
		for k := range r.tracks {
			chains[k.chain] = true
		}
		chainIDs := make([]int, 0, len(chains))
		for c := range chains {
			chainIDs = append(chainIDs, c)
		}
		sort.Ints(chainIDs)
		for _, c := range chainIDs {
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: "process_name", Ph: "M", Pid: c,
				Args: map[string]any{"name": "chain " + strconv.Itoa(c)},
			})
		}
		trackKeys := make([]trackKey, 0, len(r.tracks))
		for k := range r.tracks {
			trackKeys = append(trackKeys, k)
		}
		sort.Slice(trackKeys, func(i, j int) bool {
			if trackKeys[i].chain != trackKeys[j].chain {
				return trackKeys[i].chain < trackKeys[j].chain
			}
			return trackKeys[i].track < trackKeys[j].track
		})
		for _, k := range trackKeys {
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", Pid: k.chain, Tid: k.track,
				Args: map[string]any{"name": r.tracks[k]},
			})
		}

		idx := make([]int, len(r.events))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			x, y := r.events[idx[a]], r.events[idx[b]]
			if x.Chain != y.Chain {
				return x.Chain < y.Chain
			}
			if x.Track != y.Track {
				return x.Track < y.Track
			}
			return x.Start < y.Start
		})
		for _, i := range idx {
			e := r.events[i]
			te := traceEvent{
				Name: e.Phase.String(),
				Cat:  "sim",
				Ts:   e.Start.Microseconds(),
				Pid:  e.Chain,
				Tid:  e.Track,
				Args: map[string]any{"v": sanitizeValue(e.Value)},
			}
			if e.Kind == KindInstant {
				te.Ph = "i"
				te.Scope = "t"
			} else {
				te.Ph = "X"
				if d := e.Dur.Microseconds(); d > 0 {
					te.Dur = d
				}
			}
			out.TraceEvents = append(out.TraceEvents, te)
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// parsedTrace mirrors the subset of the trace-event schema the validator
// needs.
type parsedTrace struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
	} `json:"traceEvents"`
}

// ValidateTraceJSON parses a Chrome trace export and checks that every
// per-track timestamp sequence is monotone non-decreasing. Shared with the
// simulator's golden tests and the fuzz target.
func ValidateTraceJSON(data []byte) error {
	return validateTraceJSON(data)
}

func validateTraceJSON(data []byte) error {
	if !json.Valid(data) {
		return errInvalidJSON
	}
	var p parsedTrace
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	last := map[[2]int]float64{}
	for _, e := range p.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		k := [2]int{e.Pid, e.Tid}
		if prev, ok := last[k]; ok && e.Ts < prev {
			return errNonMonotone
		}
		last[k] = e.Ts
	}
	return nil
}

var (
	errInvalidJSON = jsonError("invalid JSON")
	errNonMonotone = jsonError("non-monotone per-track timestamps")
)

type jsonError string

func (e jsonError) Error() string { return string(e) }
