package telemetry

import (
	"reflect"
	"testing"

	"neofog/internal/units"
)

type captureSink struct {
	events  []Event
	samples []Sample
}

func (c *captureSink) OnEvent(e Event)   { c.events = append(c.events, e) }
func (c *captureSink) OnSample(s Sample) { c.samples = append(c.samples, s) }

// TestSinkSeesRecordingOrder checks the stream contract: a sink receives
// exactly the records the recorder keeps, in recording order.
func TestSinkSeesRecordingOrder(t *testing.T) {
	r := New()
	var sink captureSink
	r.SetSink(&sink)

	r.Span(0, PhaseWake, 0, 5*units.Millisecond, 1)
	r.Instant(1, PhaseTx, 12*units.Second, 8)
	r.Sample(0, 3, 12*units.Second, 100*units.Microjoule, 2, true)
	r.Span(2, PhaseFog, 24*units.Second, units.Second, 3)

	if !reflect.DeepEqual(sink.events, r.Events()) {
		t.Fatalf("sink events diverge from recorder:\n%v\n%v", sink.events, r.Events())
	}
	if !reflect.DeepEqual(sink.samples, r.Samples()) {
		t.Fatalf("sink samples diverge from recorder:\n%v\n%v", sink.samples, r.Samples())
	}
}

// TestSinkSeesMergedChains checks that MergeNext re-emits the child's
// records to the parent's sink with the assigned chain id, so a fleet
// consumer streams chains in merge order.
func TestSinkSeesMergedChains(t *testing.T) {
	parent := New()
	var sink captureSink
	parent.SetSink(&sink)

	for chain := 0; chain < 3; chain++ {
		child := New()
		child.Span(chain, PhaseHarvest, 0, units.Second, float64(chain))
		child.Sample(1, chain, units.Second, units.Microjoule, chain, false)
		parent.MergeNext(child)
	}

	if !reflect.DeepEqual(sink.events, parent.Events()) {
		t.Fatalf("merged events diverge:\n%v\n%v", sink.events, parent.Events())
	}
	if !reflect.DeepEqual(sink.samples, parent.Samples()) {
		t.Fatalf("merged samples diverge:\n%v\n%v", sink.samples, parent.Samples())
	}
	for i, e := range sink.events {
		if e.Chain != i {
			t.Fatalf("event %d tagged chain %d, want %d", i, e.Chain, i)
		}
	}
}

// TestSinkDoesNotPerturb checks that attaching a sink leaves the
// recorder's own contents untouched, and that a nil recorder tolerates
// SetSink.
func TestSinkDoesNotPerturb(t *testing.T) {
	var nilRec *Recorder
	nilRec.SetSink(&captureSink{}) // must not panic

	record := func(r *Recorder) {
		r.Count("c", 2)
		r.Span(0, PhaseTx, 0, units.Second, 1)
		r.Sample(0, 0, units.Second, units.Microjoule, 1, true)
	}
	plain, observed := New(), New()
	record(plain)
	observed.SetSink(&captureSink{})
	record(observed)
	observed.SetSink(nil)

	if !reflect.DeepEqual(plain.Events(), observed.Events()) ||
		!reflect.DeepEqual(plain.Samples(), observed.Samples()) ||
		plain.Counter("c") != observed.Counter("c") {
		t.Fatal("sink perturbed the recorder's contents")
	}
}
