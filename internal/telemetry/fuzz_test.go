package telemetry

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"neofog/internal/units"
)

// buildFromOps interprets an arbitrary byte stream as a recording session:
// a stream of fixed-width ops (span, instant, counter, gauge, histogram,
// track label, sample, merge) driving the Recorder through every public
// mutation, with hostile values — negative durations, NaN/Inf gauges and
// event values, unprintable track labels — fully representable.
func buildFromOps(data []byte) *Recorder {
	r := New()
	child := New()
	take := func(n int) []byte {
		if len(data) < n {
			pad := make([]byte, n)
			copy(pad, data)
			data = nil
			return pad
		}
		out := data[:n]
		data = data[n:]
		return out
	}
	f64 := func() float64 { return math.Float64frombits(binary.LittleEndian.Uint64(take(8))) }
	i32 := func() int32 { return int32(binary.LittleEndian.Uint32(take(4))) }
	for len(data) > 0 && len(r.events)+len(child.events) < 1<<14 {
		op := take(1)[0]
		switch op % 8 {
		case 0:
			r.Span(int(op>>4), Phase(op%16), units.Duration(i32()), units.Duration(i32()), f64())
		case 1:
			r.Instant(int(op>>4), Phase(op%16), units.Duration(i32()), f64())
		case 2:
			r.Count(string(take(3)), int64(i32()))
		case 3:
			r.SetGauge(string(take(3)), f64())
		case 4:
			r.Observe(string(take(3)), f64())
		case 5:
			r.Track(int(op>>4), string(take(4)))
		case 6:
			r.Sample(int(i32()), int(op>>4), units.Duration(i32()), units.Energy(f64()), int(op%16), op%2 == 0)
		case 7:
			child.Span(int(op>>4), Phase(op%16), units.Duration(i32()), units.Duration(i32()), f64())
			r.MergeNext(child)
			child = New()
		}
	}
	return r
}

// FuzzTraceExport: no event/metric sequence — however hostile — may make
// the exporters panic, emit invalid JSON, or break the per-track timestamp
// monotonicity the trace contract promises.
func FuzzTraceExport(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("span-ish ascii seed 0123456789 0123456789"))
	// One op of each kind with aligned argument widths.
	ops := []byte{0}
	ops = append(ops, make([]byte, 16)...) // span args
	ops = append(ops, 1)
	ops = append(ops, make([]byte, 12)...) // instant args
	ops = append(ops, 2, 'c', 't', 'r', 1, 0, 0, 0)
	ops = append(ops, 3, 'g', 'g', 'g', 0, 0, 0, 0, 0, 0, 0xF8, 0x7F) // NaN gauge
	ops = append(ops, 4, 'h', 's', 't', 0, 0, 0, 0, 0, 0, 0xF0, 0x7F) // +Inf observation
	ops = append(ops, 5, 'l', 'b', 'l', 0xFF)                         // invalid-UTF8 label
	ops = append(ops, 6)
	ops = append(ops, make([]byte, 16)...) // sample args
	ops = append(ops, 7)
	ops = append(ops, make([]byte, 16)...) // merged child span
	f.Add(ops)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := buildFromOps(data)
		var trace bytes.Buffer
		if err := r.WriteChromeTrace(&trace); err != nil {
			t.Fatalf("trace export errored: %v", err)
		}
		if err := validateTraceJSON(trace.Bytes()); err != nil {
			t.Fatalf("%v\n%s", err, trace.String())
		}
		var timeline bytes.Buffer
		if err := r.WriteTimelineCSV(&timeline); err != nil {
			t.Fatalf("timeline export errored: %v", err)
		}
		if !bytes.HasPrefix(timeline.Bytes(), []byte(timelineHeader)) {
			t.Fatal("timeline lost its header")
		}
		if out := r.SummaryTable().Format(); len(out) == 0 {
			t.Fatal("empty summary")
		}

		// The same recorded sequence must export byte-identically.
		var trace2 bytes.Buffer
		if err := r.WriteChromeTrace(&trace2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(trace.Bytes(), trace2.Bytes()) {
			t.Fatal("trace export not deterministic")
		}
	})
}
