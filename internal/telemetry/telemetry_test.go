package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"neofog/internal/units"
)

// A nil recorder must be a total no-op: every method returns immediately,
// and the exporters still produce valid (empty) artifacts.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Count("x", 1)
	r.SetGauge("g", 1)
	r.Observe("h", 1)
	r.Track(0, "node")
	r.Span(0, PhaseWake, 0, units.Second, 0)
	r.Instant(0, PhaseSense, 0, 0)
	r.Sample(0, 0, 0, 0, 0, false)
	r.MergeNext(New())
	if r.Counter("x") != 0 || len(r.Events()) != 0 || len(r.Samples()) != 0 {
		t.Fatal("nil recorder retained data")
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil trace export: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil trace export is invalid JSON: %q", buf.String())
	}
	buf.Reset()
	if err := r.WriteTimelineCSV(&buf); err != nil {
		t.Fatalf("nil timeline export: %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != timelineHeader {
		t.Fatalf("nil timeline = %q, want header only", got)
	}
	if r.SummaryTable() == nil {
		t.Fatal("nil summary table")
	}
}

// Zero-allocation-when-disabled is the overhead contract the simulator
// threads this package under; pin it so a refactor cannot silently start
// allocating on the disabled path.
func TestNilRecorderDoesNotAllocate(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(100, func() {
		r.Count("sim.wakeups", 1)
		r.Span(3, PhaseFog, units.Second, units.Millisecond, 1)
		r.Instant(3, PhaseSense, units.Second, 1024)
		r.Observe("mesh.hops", 4)
		r.Sample(1, 3, units.Second, units.Millijoule, 2, true)
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocates %.1f per op, want 0", allocs)
	}
}

func TestRegistry(t *testing.T) {
	r := New()
	r.Count("a", 2)
	r.Count("a", 3)
	r.Count("b", 1)
	if got := r.Counter("a"); got != 5 {
		t.Fatalf("counter a = %d, want 5", got)
	}
	r.SetGauge("g", 1.5)
	r.SetGauge("g", 2.5)
	if v, ok := r.Gauge("g"); !ok || v != 2.5 {
		t.Fatalf("gauge g = %v, %v", v, ok)
	}
	r.RegisterHistogram("h", []float64{1, 10})
	for _, v := range []float64{0.5, 5, 50} {
		r.Observe("h", v)
	}
	h := r.Hist("h")
	if h.N != 3 || h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 1 {
		t.Fatalf("histogram mis-bucketed: %+v", h)
	}
	if mean := h.Mean(); math.Abs(mean-(0.5+5+50)/3) > 1e-12 {
		t.Fatalf("mean = %v", mean)
	}
	names := r.CounterNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("counter names %v not sorted", names)
	}
}

func makeChild(seed int64) *Recorder {
	r := New()
	r.Track(0, "node 0")
	r.Track(1, "balancer")
	r.Count("c", seed)
	r.Observe("h", float64(seed))
	r.Span(0, PhaseWake, 0, units.Millisecond, float64(seed))
	r.Instant(1, PhaseBalance, units.Second, 1)
	r.Sample(0, 0, units.Second, units.Millijoule, 1, true)
	return r
}

// Merging the same children in the same order must be byte-identical, and
// chains must be tagged in input order.
func TestMergeDeterministicInInputOrder(t *testing.T) {
	export := func() ([]byte, []byte) {
		parent := New()
		for i := int64(0); i < 3; i++ {
			if base := parent.MergeNext(makeChild(i + 1)); base != int(i) {
				t.Fatalf("child %d merged at chain %d", i, base)
			}
		}
		var tr, tl bytes.Buffer
		if err := parent.WriteChromeTrace(&tr); err != nil {
			t.Fatal(err)
		}
		if err := parent.WriteTimelineCSV(&tl); err != nil {
			t.Fatal(err)
		}
		if got := parent.Counter("c"); got != 1+2+3 {
			t.Fatalf("merged counter = %d", got)
		}
		if h := parent.Hist("h"); h.N != 3 {
			t.Fatalf("merged histogram N = %d", h.N)
		}
		return tr.Bytes(), tl.Bytes()
	}
	tr1, tl1 := export()
	tr2, tl2 := export()
	if !bytes.Equal(tr1, tr2) {
		t.Fatal("merged trace export not deterministic")
	}
	if !bytes.Equal(tl1, tl2) {
		t.Fatal("merged timeline export not deterministic")
	}
	// Chain ids must appear for all three children.
	for chain := 0; chain < 3; chain++ {
		want := "\"pid\":" + string(rune('0'+chain))
		if !bytes.Contains(tr1, []byte(want)) {
			t.Fatalf("trace missing chain %d (%s)", chain, want)
		}
	}
}

func TestTraceExportValidAndMonotone(t *testing.T) {
	r := New()
	r.Track(0, "node 0")
	r.Track(2, "balancer")
	// Record deliberately out of track order and with odd values; the
	// exporter must still produce valid, per-track-monotone JSON.
	r.Span(2, PhaseBalance, 3*units.Second, units.Millisecond, 4)
	r.Span(0, PhaseHarvest, 0, 12*units.Second, 0.7)
	r.Span(0, PhaseWake, 0, units.Millisecond, math.NaN())
	r.Instant(0, PhaseSense, units.Millisecond, math.Inf(1))
	r.Span(0, PhaseTx, 2*units.Second, -units.Millisecond, math.Inf(-1))
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := validateTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	for _, want := range []string{"harvest", "wake", "sense", "balance", "thread_name", "process_name"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("trace missing %q", want)
		}
	}
}

func TestTimelineCSVShape(t *testing.T) {
	r := New()
	r.Sample(0, 1, 12*units.Second, 30*units.Millijoule, 2, true)
	r.Sample(1, 1, 24*units.Second, 15*units.Millijoule, 0, false)
	var buf bytes.Buffer
	if err := r.WriteTimelineCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != timelineHeader {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "0,1,0,12,30,2,1" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != "0,1,1,24,15,0,0" {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestSummaryTable(t *testing.T) {
	r := New()
	r.Count("sim.wakeups", 7)
	r.SetGauge("mean_stored_mj", 1.25)
	r.Observe("mesh.hops", 3)
	tb := r.SummaryTable()
	out := tb.Format()
	for _, want := range []string{"sim.wakeups", "counter", "7", "mean_stored_mj", "mesh.hops", "trace.events"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := New()
	h := r.RegisterHistogram("lat", []float64{1, 2, 5, 10})

	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram Quantile = %v, want 0", got)
	}

	// 100 observations spread uniformly over (0, 10]: ten per unit.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 10)
	}
	cases := []struct {
		q, want float64
	}{
		{0.10, 1},   // exactly the first bound
		{0.05, 0.5}, // interpolated inside [0,1)
		{0.20, 2},
		{0.50, 5},
		{0.75, 7.5}, // interpolated inside (5,10]
		{1.00, 10},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}

	// Out-of-range q clamps; overflow observations clamp to the last bound.
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Errorf("Quantile(-1) = %v, want %v", got, h.Quantile(0))
	}
	h.Observe(1e9)
	if got := h.Quantile(1); got != 10 {
		t.Errorf("overflow Quantile(1) = %v, want clamp to 10", got)
	}
}
