// Package isa is an executable instruction-set simulator for the 8051
// core the paper's node-level simulator is built around ("at the core of
// which is a modified 8051 RTL", §4). It implements the instruction subset
// the fog kernels' inner loops compile to, counts machine cycles with the
// classic 12-clocks-per-cycle timing that calibrates internal/cpu, and —
// the point of the exercise — supports whole-state nonvolatile snapshot
// and restore, so tests can prove the NVP's crash-consistency property:
// a program interrupted by arbitrary power failures, checkpointed, and
// resumed computes exactly what an uninterrupted run computes.
package isa

import (
	"errors"
	"fmt"
)

// Memory sizes of the modelled core.
const (
	IRAMSize = 256   // internal RAM (registers, stack, scratch)
	XRAMSize = 65536 // external RAM (the NVBuffer window)
	CodeSize = 65536
)

// PSW bits.
const (
	flagCY = 0x80 // carry
	flagAC = 0x40 // auxiliary carry
	flagOV = 0x04 // overflow
)

// Core is the architectural state of the 8051-class MCU.
type Core struct {
	ACC, B, PSW, SP byte
	DPTR            uint16
	PC              uint16
	IRAM            [IRAMSize]byte
	XRAM            []byte
	code            []byte

	// Cycles counts machine cycles executed (×12 clocks each); Insts
	// counts instructions retired. Cycles/Insts is the observed CPI.
	Cycles uint64
	Insts  uint64
	// Halted is set when the program executes the halt idiom (SJMP to
	// itself) or runs past its code.
	Halted bool
}

// New builds a core with the given program loaded at address 0.
func New(program []byte) (*Core, error) {
	if len(program) == 0 || len(program) > CodeSize {
		return nil, fmt.Errorf("isa: program size %d out of range", len(program))
	}
	c := &Core{XRAM: make([]byte, XRAMSize), SP: 0x07}
	c.code = make([]byte, len(program))
	copy(c.code, program)
	return c, nil
}

// reg returns a pointer to Rn of the active bank (bank selection bits are
// honoured via PSW bits 3-4).
func (c *Core) reg(n byte) *byte {
	bank := (c.PSW >> 3) & 0x03
	return &c.IRAM[bank*8+n]
}

func (c *Core) fetch() byte {
	if int(c.PC) >= len(c.code) {
		c.Halted = true
		return 0x00 // NOP
	}
	op := c.code[c.PC]
	c.PC++
	return op
}

func (c *Core) fetch16() uint16 {
	hi := c.fetch()
	lo := c.fetch()
	return uint16(hi)<<8 | uint16(lo)
}

func (c *Core) setCY(v bool) {
	if v {
		c.PSW |= flagCY
	} else {
		c.PSW &^= flagCY
	}
}

func (c *Core) cy() byte { return (c.PSW & flagCY) >> 7 }

func (c *Core) setOV(v bool) {
	if v {
		c.PSW |= flagOV
	} else {
		c.PSW &^= flagOV
	}
}

func (c *Core) push(v byte) {
	c.SP++
	c.IRAM[c.SP] = v
}

func (c *Core) pop() byte {
	v := c.IRAM[c.SP]
	c.SP--
	return v
}

func (c *Core) rel(off byte) uint16 {
	return uint16(int32(c.PC) + int32(int8(off)))
}

// ErrIllegal reports an opcode outside the implemented subset.
var ErrIllegal = errors.New("isa: illegal or unimplemented opcode")

// Step executes one instruction. It returns ErrIllegal (wrapped with the
// opcode and PC) on an unimplemented encoding.
func (c *Core) Step() error {
	if c.Halted {
		return nil
	}
	at := c.PC
	op := c.fetch()
	if c.Halted {
		return nil
	}
	c.Insts++

	switch {
	case op == 0x00: // NOP
		c.Cycles++

	// --- moves ---
	case op == 0x74: // MOV A,#imm
		c.ACC = c.fetch()
		c.Cycles++
	case op&0xF8 == 0xE8: // MOV A,Rn
		c.ACC = *c.reg(op & 0x07)
		c.Cycles++
	case op&0xF8 == 0xF8: // MOV Rn,A
		*c.reg(op & 0x07) = c.ACC
		c.Cycles++
	case op&0xF8 == 0x78: // MOV Rn,#imm
		*c.reg(op & 0x07) = c.fetch()
		c.Cycles++
	case op == 0xE5: // MOV A,direct
		c.ACC = c.direct(c.fetch())
		c.Cycles++
	case op == 0xF5: // MOV direct,A
		c.setDirect(c.fetch(), c.ACC)
		c.Cycles++
	case op == 0x75: // MOV direct,#imm
		d := c.fetch()
		c.setDirect(d, c.fetch())
		c.Cycles += 2
	case op == 0x90: // MOV DPTR,#imm16
		c.DPTR = c.fetch16()
		c.Cycles += 2
	case op&0xFE == 0xE6: // MOV A,@Ri
		c.ACC = c.IRAM[*c.reg(op & 0x01)]
		c.Cycles++
	case op&0xFE == 0xF6: // MOV @Ri,A
		c.IRAM[*c.reg(op & 0x01)] = c.ACC
		c.Cycles++

	// --- external RAM ---
	case op == 0xE0: // MOVX A,@DPTR
		c.ACC = c.XRAM[c.DPTR]
		c.Cycles += 2
	case op == 0xF0: // MOVX @DPTR,A
		c.XRAM[c.DPTR] = c.ACC
		c.Cycles += 2
	case op == 0xA3: // INC DPTR
		c.DPTR++
		c.Cycles += 2

	// --- arithmetic ---
	case op == 0x24: // ADD A,#imm
		c.add(c.fetch(), 0)
		c.Cycles++
	case op&0xF8 == 0x28: // ADD A,Rn
		c.add(*c.reg(op & 0x07), 0)
		c.Cycles++
	case op == 0x34: // ADDC A,#imm
		c.add(c.fetch(), c.cy())
		c.Cycles++
	case op&0xF8 == 0x38: // ADDC A,Rn
		c.add(*c.reg(op & 0x07), c.cy())
		c.Cycles++
	case op == 0x94: // SUBB A,#imm
		c.subb(c.fetch())
		c.Cycles++
	case op&0xF8 == 0x98: // SUBB A,Rn
		c.subb(*c.reg(op & 0x07))
		c.Cycles++
	case op == 0x04: // INC A
		c.ACC++
		c.Cycles++
	case op&0xF8 == 0x08: // INC Rn
		*c.reg(op & 0x07)++
		c.Cycles++
	case op == 0x14: // DEC A
		c.ACC--
		c.Cycles++
	case op&0xF8 == 0x18: // DEC Rn
		*c.reg(op & 0x07)--
		c.Cycles++
	case op == 0xA4: // MUL AB
		p := uint16(c.ACC) * uint16(c.B)
		c.ACC = byte(p)
		c.B = byte(p >> 8)
		c.setCY(false)
		c.setOV(p > 0xFF)
		c.Cycles += 4
	case op == 0x84: // DIV AB
		if c.B == 0 {
			c.setOV(true)
		} else {
			q, r := c.ACC/c.B, c.ACC%c.B
			c.ACC, c.B = q, r
			c.setOV(false)
		}
		c.setCY(false)
		c.Cycles += 4

	// --- logic ---
	case op == 0x54: // ANL A,#imm
		c.ACC &= c.fetch()
		c.Cycles++
	case op&0xF8 == 0x58: // ANL A,Rn
		c.ACC &= *c.reg(op & 0x07)
		c.Cycles++
	case op == 0x44: // ORL A,#imm
		c.ACC |= c.fetch()
		c.Cycles++
	case op&0xF8 == 0x48: // ORL A,Rn
		c.ACC |= *c.reg(op & 0x07)
		c.Cycles++
	case op == 0x64: // XRL A,#imm
		c.ACC ^= c.fetch()
		c.Cycles++
	case op&0xF8 == 0x68: // XRL A,Rn
		c.ACC ^= *c.reg(op & 0x07)
		c.Cycles++
	case op == 0xE4: // CLR A
		c.ACC = 0
		c.Cycles++
	case op == 0xF4: // CPL A
		c.ACC = ^c.ACC
		c.Cycles++
	case op == 0xC4: // SWAP A
		c.ACC = c.ACC<<4 | c.ACC>>4
		c.Cycles++
	case op == 0x23: // RL A
		c.ACC = c.ACC<<1 | c.ACC>>7
		c.Cycles++
	case op == 0x03: // RR A
		c.ACC = c.ACC>>1 | c.ACC<<7
		c.Cycles++
	case op == 0xC3: // CLR C
		c.setCY(false)
		c.Cycles++
	case op == 0xD3: // SETB C
		c.setCY(true)
		c.Cycles++

	// --- control flow ---
	case op == 0x80: // SJMP rel
		off := c.fetch()
		dst := c.rel(off)
		if dst == at {
			c.Halted = true // canonical halt: SJMP $
		}
		c.PC = dst
		c.Cycles += 2
	case op == 0x02: // LJMP addr16
		c.PC = c.fetch16()
		c.Cycles += 2
	case op == 0x60: // JZ rel
		off := c.fetch()
		if c.ACC == 0 {
			c.PC = c.rel(off)
		}
		c.Cycles += 2
	case op == 0x70: // JNZ rel
		off := c.fetch()
		if c.ACC != 0 {
			c.PC = c.rel(off)
		}
		c.Cycles += 2
	case op == 0x40: // JC rel
		off := c.fetch()
		if c.cy() == 1 {
			c.PC = c.rel(off)
		}
		c.Cycles += 2
	case op == 0x50: // JNC rel
		off := c.fetch()
		if c.cy() == 0 {
			c.PC = c.rel(off)
		}
		c.Cycles += 2
	case op&0xF8 == 0xD8: // DJNZ Rn,rel
		r := c.reg(op & 0x07)
		*r--
		off := c.fetch()
		if *r != 0 {
			c.PC = c.rel(off)
		}
		c.Cycles += 2
	case op == 0xB4: // CJNE A,#imm,rel
		imm := c.fetch()
		off := c.fetch()
		c.setCY(c.ACC < imm)
		if c.ACC != imm {
			c.PC = c.rel(off)
		}
		c.Cycles += 2
	case op&0xF8 == 0xB8: // CJNE Rn,#imm,rel
		r := *c.reg(op & 0x07)
		imm := c.fetch()
		off := c.fetch()
		c.setCY(r < imm)
		if r != imm {
			c.PC = c.rel(off)
		}
		c.Cycles += 2
	case op == 0x12: // LCALL addr16
		dst := c.fetch16()
		c.push(byte(c.PC))
		c.push(byte(c.PC >> 8))
		c.PC = dst
		c.Cycles += 2
	case op == 0x22: // RET
		hi := c.pop()
		lo := c.pop()
		c.PC = uint16(hi)<<8 | uint16(lo)
		c.Cycles += 2
	case op == 0xC0: // PUSH direct
		c.push(c.direct(c.fetch()))
		c.Cycles += 2
	case op == 0xD0: // POP direct
		c.setDirect(c.fetch(), c.pop())
		c.Cycles += 2

	default:
		return fmt.Errorf("%w: 0x%02X at 0x%04X", ErrIllegal, op, at)
	}
	return nil
}

// direct reads a direct address: 0x00–0x7F is IRAM; the SFR space maps the
// registers this subset exposes.
func (c *Core) direct(addr byte) byte {
	switch addr {
	case 0xE0:
		return c.ACC
	case 0xF0:
		return c.B
	case 0xD0:
		return c.PSW
	case 0x81:
		return c.SP
	case 0x82:
		return byte(c.DPTR)
	case 0x83:
		return byte(c.DPTR >> 8)
	default:
		return c.IRAM[addr&0x7F]
	}
}

func (c *Core) setDirect(addr, v byte) {
	switch addr {
	case 0xE0:
		c.ACC = v
	case 0xF0:
		c.B = v
	case 0xD0:
		c.PSW = v
	case 0x81:
		c.SP = v
	case 0x82:
		c.DPTR = c.DPTR&0xFF00 | uint16(v)
	case 0x83:
		c.DPTR = c.DPTR&0x00FF | uint16(v)<<8
	default:
		c.IRAM[addr&0x7F] = v
	}
}

func (c *Core) add(v, carry byte) {
	sum := uint16(c.ACC) + uint16(v) + uint16(carry)
	signedSum := int16(int8(c.ACC)) + int16(int8(v)) + int16(carry)
	c.setCY(sum > 0xFF)
	c.setOV(signedSum > 127 || signedSum < -128)
	c.ACC = byte(sum)
}

func (c *Core) subb(v byte) {
	borrow := c.cy()
	diff := int16(c.ACC) - int16(v) - int16(borrow)
	signed := int16(int8(c.ACC)) - int16(int8(v)) - int16(borrow)
	c.setCY(diff < 0)
	c.setOV(signed > 127 || signed < -128)
	c.ACC = byte(diff)
}

// Run executes until the core halts or maxCycles elapse. It reports the
// machine cycles consumed by this call.
func (c *Core) Run(maxCycles uint64) (uint64, error) {
	start := c.Cycles
	for !c.Halted && c.Cycles-start < maxCycles {
		if err := c.Step(); err != nil {
			return c.Cycles - start, err
		}
	}
	return c.Cycles - start, nil
}
