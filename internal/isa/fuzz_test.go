package isa

import (
	"testing"
)

// FuzzAssemble throws arbitrary source at the assembler: it must either
// return a non-empty machine-code image or a descriptive error — never
// panic, and never emit code whose size disagrees with the two-pass
// layout (Assemble checks that internally and reports "size drift").
func FuzzAssemble(f *testing.F) {
	f.Add("")
	f.Add("HALT")
	f.Add("MOV R0,#9\nHALT")
	f.Add("loop: DJNZ R2,loop\nSJMP loop")
	f.Add("        MOV DPTR,#0x100\n        MOVX A,@DPTR\n        ADD A,R3\nHALT")
	f.Add("; comment only\nlab:\nlab2: MOV A,#0xFF")
	f.Add("MOV A,#300")   // immediate out of range
	f.Add("JUMPY R9,#-1") // unknown mnemonic / bad register

	f.Fuzz(func(t *testing.T, src string) {
		code, err := Assemble(src)
		if err != nil {
			if code != nil {
				t.Fatalf("error %v returned alongside code", err)
			}
			return
		}
		if len(code) == 0 {
			t.Fatal("Assemble returned success with empty code")
		}
		if len(code) > 2*len(src)+8 {
			// Each instruction comes from ≥3 source bytes and encodes to
			// ≤3 bytes; success with code much longer than the source
			// means the layout pass miscounted.
			t.Fatalf("implausible code size %d from %d source bytes", len(code), len(src))
		}
		// A successfully assembled program re-assembles identically:
		// assembly is a pure function of the source.
		again, err := Assemble(src)
		if err != nil || string(again) != string(code) {
			t.Fatalf("reassembly diverged: %v", err)
		}
	})
}
