package isa

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// sumProgram computes the 8-bit sum of XRAM[0..R2-1] into XRAM[0x100].
const sumProgram = `
        MOV DPTR,#0
        MOV R2,#32      ; element count
        CLR A
        MOV R3,A        ; accumulator
loop:   MOVX A,@DPTR
        ADD A,R3
        MOV R3,A
        INC DPTR
        DJNZ R2,loop
        MOV DPTR,#0x100
        MOV A,R3
        MOVX @DPTR,A
        HALT
`

// fibProgram computes fib(10) mod 256 into XRAM[0].
const fibProgram = `
        MOV R0,#0       ; fib(0)
        MOV R1,#1       ; fib(1)
        MOV R2,#10
loop:   MOV A,R0
        ADD A,R1
        MOV R3,A        ; next
        MOV A,R1
        MOV R0,A
        MOV A,R3
        MOV R1,A
        DJNZ R2,loop
        MOV DPTR,#0
        MOV A,R0
        MOVX @DPTR,A
        HALT
`

func newSumCore(t testing.TB, data []byte) *Core {
	t.Helper()
	c, err := New(MustAssemble(sumProgram))
	if err != nil {
		t.Fatal(err)
	}
	copy(c.XRAM, data)
	return c
}

func TestSumProgram(t *testing.T) {
	data := make([]byte, 32)
	var want byte
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		data[i] = byte(rng.Intn(256))
		want += data[i]
	}
	c := newSumCore(t, data)
	if _, err := c.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !c.Halted {
		t.Fatal("program did not halt")
	}
	if got := c.XRAM[0x100]; got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	// Cycle accounting: the loop is 7 machine cycles per iteration plus
	// setup/teardown; require a plausible count, and determinism.
	if c.Cycles < 200 || c.Cycles > 400 {
		t.Fatalf("cycles = %d, outside the plausible band", c.Cycles)
	}
	c2 := newSumCore(t, data)
	c2.Run(1_000_000)
	if c2.Cycles != c.Cycles {
		t.Fatal("cycle count not deterministic")
	}
}

func TestFibProgram(t *testing.T) {
	c, err := New(MustAssemble(fibProgram))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(10_000); err != nil {
		t.Fatal(err)
	}
	// fib(0..): 0 1 1 2 3 5 8 13 21 34 55; ten iterations from (0,1)
	// leave R0 = fib(10) = 55.
	if got := c.XRAM[0]; got != 55 {
		t.Fatalf("fib = %d, want 55", got)
	}
}

func TestMulDiv(t *testing.T) {
	c, err := New(MustAssemble(`
        MOV A,#13
        MOV 0xF0,#21    ; B register
        MUL AB
        MOV DPTR,#0
        MOVX @DPTR,A    ; low byte of 273 = 17
        MOV A,0xF0
        MOV DPTR,#1
        MOVX @DPTR,A    ; high byte of 273 = 1
        MOV A,#250
        MOV 0xF0,#7
        DIV AB
        MOV DPTR,#2
        MOVX @DPTR,A    ; 250/7 = 35
        MOV A,0xF0
        MOV DPTR,#3
        MOVX @DPTR,A    ; 250%7 = 5
        HALT
`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	if c.XRAM[0] != 17 || c.XRAM[1] != 1 || c.XRAM[2] != 35 || c.XRAM[3] != 5 {
		t.Fatalf("MUL/DIV results = %v", c.XRAM[:4])
	}
}

func TestSubroutineAndStack(t *testing.T) {
	c, err := New(MustAssemble(`
        MOV A,#5
        LCALL double
        LCALL double
        MOV DPTR,#0
        MOVX @DPTR,A
        HALT
double: MOV R7,A
        ADD A,R7
        RET
`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	if c.XRAM[0] != 20 {
		t.Fatalf("double(double(5)) = %d, want 20", c.XRAM[0])
	}
}

func TestCarryAndBranches(t *testing.T) {
	c, err := New(MustAssemble(`
        MOV A,#200
        ADD A,#100      ; 300 → carry set, A=44
        JNC fail
        MOV DPTR,#0
        MOVX @DPTR,A
        CLR C
        MOV A,#5
        SUBB A,#7       ; borrow → carry set, A=254
        JNC fail
        MOV DPTR,#1
        MOVX @DPTR,A
        HALT
fail:   MOV DPTR,#2
        MOV A,#1
        MOVX @DPTR,A
        HALT
`))
	if err != nil {
		t.Fatal(err)
	}
	c.Run(1000)
	if c.XRAM[2] != 0 {
		t.Fatal("branch logic took the failure path")
	}
	if c.XRAM[0] != 44 || c.XRAM[1] != 254 {
		t.Fatalf("results = %v", c.XRAM[:2])
	}
}

// The NVP crash-consistency property: a program interrupted by ANY
// schedule of power failures, checkpointed and restored, produces exactly
// the state an uninterrupted run produces — at the same cycle count.
func TestIntermittentCrashConsistency(t *testing.T) {
	data := make([]byte, 32)
	rng := rand.New(rand.NewSource(7))
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	golden := newSumCore(t, data)
	golden.Run(1_000_000)

	f := func(burstSeed int64) bool {
		r := rand.New(rand.NewSource(burstSeed))
		c := newSumCore(t, data)
		var bursts []uint64
		for total := uint64(0); total < 2*golden.Cycles; {
			b := uint64(r.Intn(20) + 1) // 1–20 cycles of power per burst
			bursts = append(bursts, b)
			total += b
		}
		done, failures, err := c.RunIntermittent(bursts)
		if err != nil || !done || failures == 0 {
			return false
		}
		return c.XRAM[0x100] == golden.XRAM[0x100] && c.Cycles == golden.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// A volatile processor loses everything at power failure: restarting from
// reset forever under short bursts never completes the work the NVP
// finishes easily.
func TestVolatileRestartNeverFinishes(t *testing.T) {
	data := make([]byte, 32)
	c := newSumCore(t, data)

	golden := newSumCore(t, data)
	golden.Run(1_000_000)
	burst := golden.Cycles / 4 // power dies a quarter of the way in

	for i := 0; i < 20; i++ {
		c.Run(burst)
		if c.Halted {
			t.Fatal("VP should never finish: bursts are too short")
		}
		c.PowerCycle() // volatile: all progress lost
	}
	// The NVP under the same schedule completes.
	nvp := newSumCore(t, data)
	bursts := make([]uint64, 20)
	for i := range bursts {
		bursts[i] = burst
	}
	done, failures, err := nvp.RunIntermittent(bursts)
	if err != nil || !done || failures == 0 {
		t.Fatalf("NVP should complete across failures: done=%v failures=%d err=%v", done, failures, err)
	}
}

func TestIllegalOpcode(t *testing.T) {
	c, err := New([]byte{0xA5}) // reserved encoding
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); !errors.Is(err, ErrIllegal) {
		t.Fatalf("err = %v, want ErrIllegal", err)
	}
}

func TestRunOffCodeEndHalts(t *testing.T) {
	c, err := New([]byte{0x00}) // single NOP, then falls off
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if !c.Halted {
		t.Fatal("running past code should halt")
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic": "FLY A,#1",
		"bad label":        "dup: NOP\ndup: NOP",
		"unknown target":   "SJMP nowhere",
		"bad immediate":    "MOV A,#banana",
		"bad register":     "ADD A,R9",
		"empty":            "; just a comment",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		}
	}
}

func TestAssemblerBranchRange(t *testing.T) {
	// A relative branch across >127 bytes of padding must be rejected.
	src := "SJMP far\n"
	for i := 0; i < 100; i++ {
		src += "MOV A,#1\n" // 2 bytes each
	}
	src += "far: HALT\n"
	if _, err := Assemble(src); err == nil {
		t.Fatal("out-of-range branch should error")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty program should error")
	}
	if _, err := New(make([]byte, CodeSize+1)); err == nil {
		t.Fatal("oversized program should error")
	}
}

func TestCheckpointIsDeep(t *testing.T) {
	c, _ := New(MustAssemble("MOV R0,#9\nHALT"))
	snap := c.Checkpoint()
	c.IRAM[0] = 42
	if snap.IRAM[0] == 42 {
		t.Fatal("checkpoint must not alias live IRAM")
	}
	c.Restore(snap)
	if c.IRAM[0] != 0 {
		t.Fatal("restore should reinstate the snapshot")
	}
}

// Cross-validation against internal/cpu's cost model: the paper's platform
// charges 12 clocks (one machine cycle) per instruction; the ISS's
// measured CPI over real kernels must sit in the classic 8051 1–2
// machine-cycle band, bracketing that model.
func TestObservedCPIBracketsCostModel(t *testing.T) {
	data := make([]byte, 32)
	for i := range data {
		data[i] = byte(i * 7)
	}
	c := newSumCore(t, data)
	c.Run(1_000_000)
	cpi := float64(c.Cycles) / float64(c.Insts)
	if cpi < 1.0 || cpi > 2.0 {
		t.Fatalf("CPI = %.2f, want within the 8051's 1–2 machine-cycle band", cpi)
	}
	t.Logf("sum kernel: %d insts, %d machine cycles, CPI %.2f (cost model charges 1.0)",
		c.Insts, c.Cycles, cpi)
}

func BenchmarkISSSumKernel(b *testing.B) {
	data := make([]byte, 32)
	prog := MustAssemble(sumProgram)
	for i := 0; i < b.N; i++ {
		c, err := New(prog)
		if err != nil {
			b.Fatal(err)
		}
		copy(c.XRAM, data)
		if _, err := c.Run(1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// opcodeGauntlet exercises the rest of the implemented opcode matrix:
// logic ops in both immediate and register forms, rotates, SWAP, @Ri
// indirection, direct-address moves, ADDC chains, PUSH/POP, LJMP and the
// CJNE register form. Each stage writes a checkpointable witness to XRAM.
const opcodeGauntlet = `
        MOV A,#0xF0
        ANL A,#0xCC     ; 0xC0
        MOV R4,#0x0F
        ORL A,R4        ; 0xCF
        XRL A,#0xFF     ; 0x30
        SWAP A          ; 0x03
        RL A            ; 0x06
        RR A            ; 0x03
        MOV DPTR,#0
        MOVX @DPTR,A

        MOV 0x30,#0x55  ; direct-address store
        MOV A,0x30
        CPL A           ; 0xAA
        MOV R0,#0x40    ; @Ri indirection
        MOV @R0,A
        CLR A
        MOV A,@R0
        MOV DPTR,#1
        MOVX @DPTR,A    ; 0xAA

        CLR C
        MOV A,#0xFF
        ADD A,#1        ; carry out, A=0
        MOV A,#0
        ADDC A,#0       ; A = carry = 1
        MOV DPTR,#2
        MOVX @DPTR,A

        MOV A,#0x77
        PUSH 0xE0       ; push ACC
        CLR A
        POP 0xE0        ; pop into ACC
        MOV DPTR,#3
        MOVX @DPTR,A    ; 0x77

        MOV R5,#3
        MOV A,#0
again:  INC A
        CJNE R5,#0,dec  ; register-form compare
        LJMP done
dec:    DEC R5
        LJMP again
done:   MOV DPTR,#4
        MOVX @DPTR,A    ; loop ran 4 times → 4
        SETB C
        JC okc
        MOV A,#0xEE
        MOVX @DPTR,A
okc:    HALT
`

func TestOpcodeGauntlet(t *testing.T) {
	c, err := New(MustAssemble(opcodeGauntlet))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(100000); err != nil {
		t.Fatal(err)
	}
	if !c.Halted {
		t.Fatal("gauntlet did not halt")
	}
	want := []byte{0x03, 0xAA, 0x01, 0x77, 0x04}
	for i, w := range want {
		if c.XRAM[i] != w {
			t.Fatalf("stage %d: got %#02x, want %#02x (XRAM %v)", i, c.XRAM[i], w, c.XRAM[:5])
		}
	}
}

// The gauntlet is also the crash-consistency stress: interrupt it with
// single-cycle bursts and the results must not change.
func TestOpcodeGauntletIntermittent(t *testing.T) {
	golden, _ := New(MustAssemble(opcodeGauntlet))
	golden.Run(100000)

	c, _ := New(MustAssemble(opcodeGauntlet))
	bursts := make([]uint64, 4*golden.Cycles)
	for i := range bursts {
		bursts[i] = 1
	}
	done, failures, err := c.RunIntermittent(bursts)
	if err != nil || !done {
		t.Fatalf("done=%v failures=%d err=%v", done, failures, err)
	}
	for i := 0; i < 5; i++ {
		if c.XRAM[i] != golden.XRAM[i] {
			t.Fatalf("stage %d diverged under single-cycle power", i)
		}
	}
	if failures < int(golden.Cycles)/2 {
		t.Fatalf("expected a failure storm, got %d", failures)
	}
}

// Assembly is deterministic and the encoder second pass agrees with the
// first pass's sizing for every instruction in the gauntlet.
func TestAssembleDeterministic(t *testing.T) {
	a := MustAssemble(opcodeGauntlet)
	b := MustAssemble(opcodeGauntlet)
	if len(a) != len(b) {
		t.Fatal("sizes differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}

// firProgram is a 4-tap 8-bit FIR filter: for each output sample i,
// y[i] = Σ_k taps[k]·x[i+k] / 256, with x in XRAM[0x000..], taps in
// XRAM[0x200..], y to XRAM[0x300..]. It exercises MUL AB in a real kernel
// and lets us measure machine cycles per multiply-accumulate on the
// actual core.
const firProgram = `
        MOV R6,#16      ; output count
        MOV R5,#0       ; output index i
outer:  MOV R4,#4       ; tap count
        MOV R3,#0       ; acc high byte (we keep only the high byte ≈ /256)
        MOV R2,#0       ; acc low byte
        MOV R1,#0       ; k
inner:  MOV A,R5
        ADD A,R1        ; i + k
        MOV DPTR,#0
        MOV 0x82,A      ; DPL = i+k (x at XRAM 0x0000)
        MOVX A,@DPTR
        MOV 0xF0,A      ; B = x[i+k]
        MOV A,R1
        MOV DPTR,#0x200
        MOV 0x82,A      ; DPL = k (taps at XRAM 0x0200)
        MOVX A,@DPTR    ; A = taps[k]
        MUL AB          ; B:A = taps[k]*x[i+k]
        ADD A,R2        ; acc.lo += product.lo
        MOV R2,A
        MOV A,0xF0
        ADDC A,R3       ; acc.hi += product.hi + carry
        MOV R3,A
        INC R1
        DJNZ R4,inner
        MOV A,R5
        MOV DPTR,#0x300
        MOV 0x82,A      ; DPL = i (y at XRAM 0x0300)
        MOV A,R3
        MOVX @DPTR,A    ; y[i] = acc >> 8
        INC R5
        DJNZ R6,outer
        HALT
`

// TestFIRKernelOnISS runs the assembly FIR against a Go fixed-point
// reference and measures the real cycles-per-MAC, cross-validating the
// dsp package's soft-float cost assumption (45 insts/MAC) as conservative
// for fixed-point code (~20–30 machine cycles) and right-order for float.
func TestFIRKernelOnISS(t *testing.T) {
	c, err := New(MustAssemble(firProgram))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	x := make([]byte, 32)
	for i := range x {
		x[i] = byte(rng.Intn(256))
	}
	taps := []byte{64, 96, 64, 32} // /256 ≈ 0.25, 0.375, 0.25, 0.125
	copy(c.XRAM[0x000:], x)
	copy(c.XRAM[0x200:], taps)

	if _, err := c.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !c.Halted {
		t.Fatal("FIR did not halt")
	}
	for i := 0; i < 16; i++ {
		var acc uint32
		for k := 0; k < 4; k++ {
			acc += uint32(taps[k]) * uint32(x[i+k])
		}
		want := byte(acc >> 8) // the kernel keeps the high byte
		if got := c.XRAM[0x300+i]; got != want {
			t.Fatalf("y[%d] = %d, want %d", i, got, want)
		}
	}
	macs := uint64(16 * 4)
	cyclesPerMAC := float64(c.Cycles) / float64(macs)
	if cyclesPerMAC < 10 || cyclesPerMAC > 40 {
		t.Fatalf("cycles/MAC = %.1f, outside the plausible 8-bit fixed-point band", cyclesPerMAC)
	}
	t.Logf("FIR on ISS: %d cycles for %d MACs → %.1f cycles/MAC (dsp soft-float model: 45)",
		c.Cycles, macs, cyclesPerMAC)
}

// And the FIR kernel, too, must be crash-consistent.
func TestFIRKernelIntermittent(t *testing.T) {
	build := func() *Core {
		c, _ := New(MustAssemble(firProgram))
		for i := 0; i < 32; i++ {
			c.XRAM[i] = byte(i*37 + 11)
		}
		copy(c.XRAM[0x200:], []byte{64, 96, 64, 32})
		return c
	}
	golden := build()
	golden.Run(1_000_000)

	c := build()
	bursts := make([]uint64, golden.Cycles)
	for i := range bursts {
		bursts[i] = 3
	}
	done, _, err := c.RunIntermittent(bursts)
	if err != nil || !done {
		t.Fatalf("done=%v err=%v", done, err)
	}
	for i := 0; i < 16; i++ {
		if c.XRAM[0x300+i] != golden.XRAM[0x300+i] {
			t.Fatalf("y[%d] diverged under intermittent power", i)
		}
	}
}
