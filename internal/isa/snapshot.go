package isa

// Snapshot is a complete nonvolatile checkpoint of the core: what the
// NV flip-flop fabric of an NVP captures at power failure (§2.2). XRAM is
// not copied — it stands for the node's nonvolatile buffer, which persists
// in place.
type Snapshot struct {
	ACC, B, PSW, SP byte
	DPTR, PC        uint16
	IRAM            [IRAMSize]byte
	Cycles, Insts   uint64
	Halted          bool
}

// Checkpoint captures the architectural state.
func (c *Core) Checkpoint() Snapshot {
	return Snapshot{
		ACC: c.ACC, B: c.B, PSW: c.PSW, SP: c.SP,
		DPTR: c.DPTR, PC: c.PC, IRAM: c.IRAM,
		Cycles: c.Cycles, Insts: c.Insts, Halted: c.Halted,
	}
}

// Restore reinstates a checkpoint (the XRAM and code are left untouched —
// both are nonvolatile).
func (c *Core) Restore(s Snapshot) {
	c.ACC, c.B, c.PSW, c.SP = s.ACC, s.B, s.PSW, s.SP
	c.DPTR, c.PC, c.IRAM = s.DPTR, s.PC, s.IRAM
	c.Cycles, c.Insts, c.Halted = s.Cycles, s.Insts, s.Halted
}

// PowerCycle models a volatile processor's power failure: every volatile
// bit is lost and execution restarts from reset. XRAM (nonvolatile
// storage) survives; anything the program kept in registers or IRAM is
// gone — which is why a VP cannot make forward progress through outages.
func (c *Core) PowerCycle() {
	c.ACC, c.B, c.PSW, c.SP = 0, 0, 0, 0x07
	c.DPTR, c.PC = 0, 0
	c.IRAM = [IRAMSize]byte{}
	c.Halted = false
}

// RunIntermittent executes the program under a schedule of power-on
// bursts, checkpointing at each failure and restoring at each recovery —
// the NVP execution discipline. It stops when the program halts or the
// bursts are exhausted, reporting whether the program completed and how
// many power failures it actually endured.
func (c *Core) RunIntermittent(bursts []uint64) (done bool, failures int, err error) {
	for _, burst := range bursts {
		if _, err := c.Run(burst); err != nil {
			return false, failures, err
		}
		if c.Halted {
			return true, failures, nil
		}
		// Power failure: backup, die, restore on recovery.
		snap := c.Checkpoint()
		c.PowerCycle()
		c.Restore(snap)
		failures++
	}
	return c.Halted, failures, nil
}
