package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates a small 8051 assembly dialect into machine code for
// the implemented subset. Labels end with ':', comments start with ';',
// numbers are decimal or 0x-hex, immediates use '#'. The pseudo-op HALT
// emits the canonical SJMP-to-self halt idiom.
func Assemble(src string) ([]byte, error) {
	lines := strings.Split(src, "\n")

	type inst struct {
		line   int
		mnem   string
		args   []string
		addr   uint16
		size   int
		encode func(addr uint16, labels map[string]uint16) ([]byte, error)
	}
	var insts []inst
	labels := map[string]uint16{}

	// First pass: tokenise, size, and place labels.
	addr := uint16(0)
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		for {
			colon := strings.IndexByte(line, ':')
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if label == "" || strings.ContainsAny(label, " \t") {
				return nil, fmt.Errorf("isa: line %d: bad label %q", ln+1, label)
			}
			label = strings.ToUpper(label) // the tokeniser uppercases operands
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("isa: line %d: duplicate label %q", ln+1, label)
			}
			labels[label] = addr
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		mnem := strings.ToUpper(fields[0])
		argStr := strings.Join(fields[1:], "")
		var args []string
		if argStr != "" {
			for _, a := range strings.Split(argStr, ",") {
				args = append(args, strings.ToUpper(strings.TrimSpace(a)))
			}
		}
		in := inst{line: ln + 1, mnem: mnem, args: args, addr: addr}
		size, enc, err := plan(mnem, args, ln+1)
		if err != nil {
			return nil, err
		}
		in.size, in.encode = size, enc
		addr += uint16(size)
		insts = append(insts, in)
	}

	// Second pass: encode with resolved labels. Relative offsets are
	// computed from the instruction end.
	var out []byte
	for _, in := range insts {
		b, err := in.encode(in.addr, labels)
		if err != nil {
			return nil, err
		}
		if len(b) != in.size {
			return nil, fmt.Errorf("isa: line %d: size drift (%d vs %d)", in.line, len(b), in.size)
		}
		out = append(out, b...)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("isa: empty program")
	}
	return out, nil
}

// MustAssemble is Assemble for tests and examples with known-good sources.
func MustAssemble(src string) []byte {
	b, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return b
}

func num(s string) (int, error) {
	ls := strings.ToLower(s)
	if strings.HasPrefix(ls, "0x") {
		v, err := strconv.ParseInt(ls[2:], 16, 32)
		return int(v), err
	}
	v, err := strconv.ParseInt(ls, 10, 32)
	return int(v), err
}

func regNum(s string) (byte, bool) {
	if len(s) == 2 && s[0] == 'R' && s[1] >= '0' && s[1] <= '7' {
		return s[1] - '0', true
	}
	return 0, false
}

func imm8(s string, line int) (byte, error) {
	if !strings.HasPrefix(s, "#") {
		return 0, fmt.Errorf("isa: line %d: expected immediate, got %q", line, s)
	}
	v, err := num(s[1:])
	if err != nil || v < -128 || v > 255 {
		return 0, fmt.Errorf("isa: line %d: bad immediate %q", line, s)
	}
	return byte(v), nil
}

func direct8(s string, line int) (byte, error) {
	v, err := num(s)
	if err != nil || v < 0 || v > 255 {
		return 0, fmt.Errorf("isa: line %d: bad direct address %q", line, s)
	}
	return byte(v), nil
}

// relTo computes a relative branch byte from the end of an instruction at
// base+size to a label.
func relTo(labels map[string]uint16, label string, end uint16, line int) (byte, error) {
	dst, ok := labels[label]
	if !ok {
		return 0, fmt.Errorf("isa: line %d: unknown label %q", line, label)
	}
	off := int(dst) - int(end)
	if off < -128 || off > 127 {
		return 0, fmt.Errorf("isa: line %d: branch to %q out of range (%d)", line, label, off)
	}
	return byte(int8(off)), nil
}

// encoder emits an instruction's bytes given its own address (for
// relative branches) and the label table.
type encoder func(addr uint16, labels map[string]uint16) ([]byte, error)

// plan returns the instruction size and its encoder.
func plan(mnem string, args []string, line int) (int, encoder, error) {
	fixed := func(b ...byte) (int, encoder, error) {
		return len(b), func(uint16, map[string]uint16) ([]byte, error) { return b, nil }, nil
	}
	bad := func() (int, encoder, error) {
		return 0, nil, fmt.Errorf("isa: line %d: cannot encode %s %s", line, mnem, strings.Join(args, ","))
	}
	arg := func(i int) string {
		if i < len(args) {
			return args[i]
		}
		return ""
	}

	switch mnem {
	case "NOP":
		return fixed(0x00)
	case "HALT":
		return fixed(0x80, 0xFE) // SJMP $
	case "RET":
		return fixed(0x22)
	case "MUL":
		if arg(0) == "AB" {
			return fixed(0xA4)
		}
	case "DIV":
		if arg(0) == "AB" {
			return fixed(0x84)
		}
	case "CLR":
		switch arg(0) {
		case "A":
			return fixed(0xE4)
		case "C":
			return fixed(0xC3)
		}
	case "SETB":
		if arg(0) == "C" {
			return fixed(0xD3)
		}
	case "CPL":
		if arg(0) == "A" {
			return fixed(0xF4)
		}
	case "SWAP":
		if arg(0) == "A" {
			return fixed(0xC4)
		}
	case "RL":
		if arg(0) == "A" {
			return fixed(0x23)
		}
	case "RR":
		if arg(0) == "A" {
			return fixed(0x03)
		}
	case "INC":
		switch {
		case arg(0) == "A":
			return fixed(0x04)
		case arg(0) == "DPTR":
			return fixed(0xA3)
		default:
			if r, ok := regNum(arg(0)); ok {
				return fixed(0x08 | r)
			}
		}
	case "DEC":
		switch {
		case arg(0) == "A":
			return fixed(0x14)
		default:
			if r, ok := regNum(arg(0)); ok {
				return fixed(0x18 | r)
			}
		}
	case "MOVX":
		switch {
		case arg(0) == "A" && arg(1) == "@DPTR":
			return fixed(0xE0)
		case arg(0) == "@DPTR" && arg(1) == "A":
			return fixed(0xF0)
		}
	case "MOV":
		a, b := arg(0), arg(1)
		switch {
		case a == "DPTR" && strings.HasPrefix(b, "#"):
			v, err := num(b[1:])
			if err != nil || v < 0 || v > 0xFFFF {
				return bad()
			}
			return fixed(0x90, byte(v>>8), byte(v))
		case a == "A" && strings.HasPrefix(b, "#"):
			v, err := imm8(b, line)
			if err != nil {
				return 0, nil, err
			}
			return fixed(0x74, v)
		case a == "A" && b == "@R0":
			return fixed(0xE6)
		case a == "A" && b == "@R1":
			return fixed(0xE7)
		case a == "@R0" && b == "A":
			return fixed(0xF6)
		case a == "@R1" && b == "A":
			return fixed(0xF7)
		case a == "A":
			if r, ok := regNum(b); ok {
				return fixed(0xE8 | r)
			}
			d, err := direct8(b, line)
			if err != nil {
				return 0, nil, err
			}
			return fixed(0xE5, d)
		case b == "A":
			if r, ok := regNum(a); ok {
				return fixed(0xF8 | r)
			}
			d, err := direct8(a, line)
			if err != nil {
				return 0, nil, err
			}
			return fixed(0xF5, d)
		case strings.HasPrefix(b, "#"):
			v, err := imm8(b, line)
			if err != nil {
				return 0, nil, err
			}
			if r, ok := regNum(a); ok {
				return fixed(0x78|r, v)
			}
			d, err := direct8(a, line)
			if err != nil {
				return 0, nil, err
			}
			return fixed(0x75, d, v)
		}
	case "ADD", "ADDC", "SUBB", "ANL", "ORL", "XRL":
		if arg(0) != "A" {
			return bad()
		}
		base := map[string][2]byte{
			"ADD": {0x24, 0x28}, "ADDC": {0x34, 0x38}, "SUBB": {0x94, 0x98},
			"ANL": {0x54, 0x58}, "ORL": {0x44, 0x48}, "XRL": {0x64, 0x68},
		}[mnem]
		b := arg(1)
		if strings.HasPrefix(b, "#") {
			v, err := imm8(b, line)
			if err != nil {
				return 0, nil, err
			}
			return fixed(base[0], v)
		}
		if r, ok := regNum(b); ok {
			return fixed(base[1] | r)
		}
	case "PUSH":
		d, err := direct8(arg(0), line)
		if err != nil {
			return 0, nil, err
		}
		return fixed(0xC0, d)
	case "POP":
		d, err := direct8(arg(0), line)
		if err != nil {
			return 0, nil, err
		}
		return fixed(0xD0, d)

	// Label-consuming instructions.
	case "SJMP", "JZ", "JNZ", "JC", "JNC":
		op := map[string]byte{"SJMP": 0x80, "JZ": 0x60, "JNZ": 0x70, "JC": 0x40, "JNC": 0x50}[mnem]
		label := arg(0)
		return 2, func(addr uint16, labels map[string]uint16) ([]byte, error) {
			off, err := relTo(labels, label, addr+2, line)
			if err != nil {
				return nil, err
			}
			return []byte{op, off}, nil
		}, nil
	case "LJMP", "LCALL":
		op := map[string]byte{"LJMP": 0x02, "LCALL": 0x12}[mnem]
		label := arg(0)
		return 3, func(_ uint16, labels map[string]uint16) ([]byte, error) {
			dst, ok := labels[label]
			if !ok {
				return nil, fmt.Errorf("isa: line %d: unknown label %q", line, label)
			}
			return []byte{op, byte(dst >> 8), byte(dst)}, nil
		}, nil
	case "DJNZ":
		r, ok := regNum(arg(0))
		if !ok {
			return bad()
		}
		label := arg(1)
		return 2, func(addr uint16, labels map[string]uint16) ([]byte, error) {
			off, err := relTo(labels, label, addr+2, line)
			if err != nil {
				return nil, err
			}
			return []byte{0xD8 | r, off}, nil
		}, nil
	case "CJNE":
		var op byte
		if arg(0) == "A" {
			op = 0xB4
		} else if r, ok := regNum(arg(0)); ok {
			op = 0xB8 | r
		} else {
			return bad()
		}
		v, err := imm8(arg(1), line)
		if err != nil {
			return 0, nil, err
		}
		label := arg(2)
		return 3, func(addr uint16, labels map[string]uint16) ([]byte, error) {
			off, err := relTo(labels, label, addr+3, line)
			if err != nil {
				return nil, err
			}
			return []byte{op, v, off}, nil
		}, nil
	}
	return bad()
}
