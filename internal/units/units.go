// Package units defines the physical quantities used throughout the NEOFog
// simulator: time in microseconds, energy in nanojoules, and power in
// milliwatts. The units are chosen so that the identity
//
//	Energy[nJ] = Power[mW] × Duration[µs]
//
// holds exactly, which keeps every energy computation in the simulator a
// plain multiplication with no conversion factors.
package units

import (
	"fmt"
	"math"
	"time"
)

// Duration is simulated time in microseconds. It is a distinct type from
// time.Duration (which counts nanoseconds) so that the two cannot be mixed
// accidentally; convert explicitly with FromStd/Std.
type Duration int64

// Common durations.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
	Hour        Duration = 60 * Minute
)

// FromStd converts a time.Duration to a simulator Duration, truncating to
// whole microseconds.
func FromStd(d time.Duration) Duration { return Duration(d / time.Microsecond) }

// Std converts a simulator Duration to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) * time.Microsecond }

// Microseconds returns the duration as a count of microseconds.
func (d Duration) Microseconds() int64 { return int64(d) }

// Milliseconds returns the duration in milliseconds as a float.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Seconds returns the duration in seconds as a float.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Minutes returns the duration in minutes as a float.
func (d Duration) Minutes() float64 { return float64(d) / float64(Minute) }

func (d Duration) String() string {
	switch {
	case d < Millisecond:
		return fmt.Sprintf("%dµs", int64(d))
	case d < Second:
		return fmt.Sprintf("%.3gms", d.Milliseconds())
	case d < Minute:
		return fmt.Sprintf("%.3gs", d.Seconds())
	default:
		return fmt.Sprintf("%.4gmin", d.Minutes())
	}
}

// Milliseconds constructs a Duration from a (possibly fractional) number of
// milliseconds, rounding to the nearest microsecond. It is the natural
// constructor for the paper's published latency formulas, which are all
// expressed in ms.
func Milliseconds(ms float64) Duration {
	return Duration(math.Round(ms * float64(Millisecond)))
}

// Seconds constructs a Duration from a number of seconds.
func Seconds(s float64) Duration { return Duration(math.Round(s * float64(Second))) }

// Energy is an amount of energy in nanojoules.
type Energy float64

// Common energy magnitudes.
const (
	Nanojoule  Energy = 1
	Microjoule Energy = 1e3
	Millijoule Energy = 1e6
	Joule      Energy = 1e9
)

// Microjoules returns the energy in µJ.
func (e Energy) Microjoules() float64 { return float64(e) / float64(Microjoule) }

// Millijoules returns the energy in mJ.
func (e Energy) Millijoules() float64 { return float64(e) / float64(Millijoule) }

// Joules returns the energy in J.
func (e Energy) Joules() float64 { return float64(e) / float64(Joule) }

func (e Energy) String() string {
	abs := math.Abs(float64(e))
	switch {
	case abs < float64(Microjoule):
		return fmt.Sprintf("%.4gnJ", float64(e))
	case abs < float64(Millijoule):
		return fmt.Sprintf("%.4gµJ", e.Microjoules())
	case abs < float64(Joule):
		return fmt.Sprintf("%.4gmJ", e.Millijoules())
	default:
		return fmt.Sprintf("%.4gJ", e.Joules())
	}
}

// Power is instantaneous power in milliwatts.
type Power float64

// Common power magnitudes.
const (
	Microwatt Power = 1e-3
	Milliwatt Power = 1
	Watt      Power = 1e3
)

func (p Power) String() string {
	abs := math.Abs(float64(p))
	switch {
	case abs < float64(Milliwatt):
		return fmt.Sprintf("%.4gµW", float64(p)/float64(Microwatt))
	case abs < float64(Watt):
		return fmt.Sprintf("%.4gmW", float64(p))
	default:
		return fmt.Sprintf("%.4gW", float64(p)/float64(Watt))
	}
}

// Over returns the energy delivered by power p sustained for duration d.
// With the chosen units this is an exact multiplication: mW × µs = nJ.
func (p Power) Over(d Duration) Energy { return Energy(float64(p) * float64(d)) }

// DurationAt returns how long energy e can sustain power p. It reports the
// floor in whole microseconds; p must be positive.
func (e Energy) DurationAt(p Power) Duration {
	if p <= 0 {
		panic("units: DurationAt requires positive power")
	}
	return Duration(float64(e) / float64(p))
}
