package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestPowerOverIdentity(t *testing.T) {
	// 1 mW for 1 µs is exactly 1 nJ: this identity underpins every energy
	// computation in the simulator.
	if got := Milliwatt.Over(Microsecond); got != 1 {
		t.Fatalf("1mW over 1µs = %v nJ, want 1", got)
	}
	if got := Power(89.1).Over(Millisecond); math.Abs(float64(got)-89100) > 1e-9 {
		t.Fatalf("89.1mW over 1ms = %v, want 89100 nJ", got)
	}
	// The paper's RF TX energy: 89.1 mW for 256 µs (8 bytes at 250 kbps)
	// must come out to 22809.6 nJ, Table 2's bridge TX energy.
	if got := Power(89.1).Over(256 * Microsecond); math.Abs(float64(got)-22809.6) > 1e-6 {
		t.Fatalf("bridge TX energy = %v, want 22809.6 nJ", got)
	}
}

func TestDurationConversions(t *testing.T) {
	cases := []struct {
		d    Duration
		ms   float64
		s    float64
		mins float64
	}{
		{Millisecond, 1, 0.001, 0.001 / 60},
		{Second, 1000, 1, 1.0 / 60},
		{5 * Hour, 5 * 3600 * 1000, 5 * 3600, 300},
	}
	for _, c := range cases {
		if c.d.Milliseconds() != c.ms {
			t.Errorf("%v.Milliseconds() = %v, want %v", c.d, c.d.Milliseconds(), c.ms)
		}
		if c.d.Seconds() != c.s {
			t.Errorf("%v.Seconds() = %v, want %v", c.d, c.d.Seconds(), c.s)
		}
		if math.Abs(c.d.Minutes()-c.mins) > 1e-12 {
			t.Errorf("%v.Minutes() = %v, want %v", c.d, c.d.Minutes(), c.mins)
		}
	}
}

func TestMillisecondsConstructor(t *testing.T) {
	// The ML7266 software TX formula is (255 + 1.472N) ms; make sure
	// fractional milliseconds round-trip to within a microsecond.
	d := Milliseconds(255 + 1.472*100)
	want := Duration(402200) // 402.2 ms
	if d != want {
		t.Fatalf("Milliseconds(402.2) = %d, want %d", d, want)
	}
	if Milliseconds(0.0005) != 1 { // rounds up
		t.Fatalf("Milliseconds(0.0005) = %d, want 1", Milliseconds(0.0005))
	}
}

func TestFromStdRoundTrip(t *testing.T) {
	f := func(us int32) bool {
		d := Duration(us)
		return FromStd(d.Std()) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if FromStd(1500*time.Nanosecond) != 1 {
		t.Fatal("FromStd should truncate sub-µs")
	}
}

func TestDurationAt(t *testing.T) {
	e := Power(10).Over(Second) // 10 mW · 1 s
	if got := e.DurationAt(10); got != Second {
		t.Fatalf("DurationAt = %v, want 1s", got)
	}
	if got := e.DurationAt(20); got != Second/2 {
		t.Fatalf("DurationAt = %v, want 0.5s", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("DurationAt(0) should panic")
		}
	}()
	e.DurationAt(0)
}

func TestEnergyPowerDurationRoundTrip(t *testing.T) {
	// Property: for positive power and duration, Over then DurationAt
	// recovers the duration (within 1 µs of float truncation).
	f := func(pRaw, dRaw uint16) bool {
		p := Power(float64(pRaw%500) + 0.5)
		d := Duration(dRaw) + 1
		back := p.Over(d).DurationAt(p)
		diff := back - d
		return diff >= -1 && diff <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormats(t *testing.T) {
	cases := []struct {
		got, wantSub string
	}{
		{(500 * Microsecond).String(), "µs"},
		{(5 * Millisecond).String(), "ms"},
		{(5 * Second).String(), "s"},
		{(90 * Minute).String(), "min"},
		{Energy(12).String(), "nJ"},
		{Energy(12e3).String(), "µJ"},
		{Energy(12e6).String(), "mJ"},
		{Energy(12e9).String(), "J"},
		{Power(0.5).String(), "µW"},
		{Power(89.1).String(), "mW"},
		{Power(1500).String(), "W"},
	}
	for _, c := range cases {
		if !strings.Contains(c.got, c.wantSub) {
			t.Errorf("String() = %q, want unit %q", c.got, c.wantSub)
		}
	}
}

func TestEnergyUnits(t *testing.T) {
	if Millijoule != 1e6 || Joule != 1e9 {
		t.Fatal("energy unit constants are wrong")
	}
	e := Energy(2.5e6)
	if e.Millijoules() != 2.5 {
		t.Fatalf("Millijoules = %v", e.Millijoules())
	}
	if e.Microjoules() != 2500 {
		t.Fatalf("Microjoules = %v", e.Microjoules())
	}
	if e.Joules() != 0.0025 {
		t.Fatalf("Joules = %v", e.Joules())
	}
}
