// Package faults is the deterministic fault-injection subsystem: it turns
// the paper's tolerance claims — Algorithm 1 is "tolerant of node failures
// during balancing" (§5.2), the mesh layer's orphan scan exists only to
// survive relay death (§4) — into schedules of injectable adversity that
// the system simulator executes through the hook points on sim.Config.
//
// A Plan is a list of Events, either declared explicitly or generated from
// a seed at a chosen intensity. Plans are pure data: applying one installs
// stateless, RNG-free hooks, so a faulted run is exactly as reproducible
// as a clean one, and a zero-event plan is bit-identical to no plan at
// all. On top, Campaign (campaign.go) sweeps intensity across runs and
// asserts the graceful-degradation invariants.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"neofog/internal/mesh"
	"neofog/internal/sim"
)

// Kind enumerates the injectable fault classes.
type Kind int

// The fault classes, each landing in a different layer of the stack.
const (
	// Crash takes a node out of its rounds entirely (firmware hang or
	// hardware death); the harvester keeps charging and the node revives
	// spontaneously when the window closes.
	Crash Kind = iota
	// Blackout zeroes a node's harvest income (a cloudburst over its
	// panel); stored energy drains normally, so long blackouts can kill
	// the RTC cap and force a costly resynchronisation.
	Blackout
	// RFInitFail makes a node's radio fail to initialise: transmits and
	// receives on it fail for the window without draining the cap.
	RFInitFail
	// SensorStuck marks the node's samples as stuck-at garbage; the node
	// cannot tell, so the packets still flow — only the count surfaces.
	SensorStuck
	// LinkDegrade overrides the network-wide per-packet success rate
	// below the measured 99.25% (§4: loss was "mainly affected by
	// weather, especially rain").
	LinkDegrade
	// BalanceAbort cuts every balancing invocation short mid-run ("if
	// load balance algorithm is interrupted, no load balance will take
	// place at that region", §3.2).
	BalanceAbort
)

// kindNames is indexed by Kind.
var kindNames = []string{"crash", "blackout", "rf-init-fail", "sensor-stuck", "link-degrade", "balance-abort"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Event is one scheduled fault: Kind applies to physical node Node (-1 =
// network-wide, required for LinkDegrade and BalanceAbort) during rounds
// [Start, End).
type Event struct {
	Kind  Kind
	Node  int
	Start int
	End   int
	// SuccessRate is the per-packet delivery probability a LinkDegrade
	// event imposes; unused by other kinds.
	SuccessRate float64
}

// Active reports whether the event covers the round.
func (e Event) Active(round int) bool { return round >= e.Start && round < e.End }

// Plan is a schedule of fault events for one simulation run.
type Plan struct {
	Events []Event
}

// Validate checks the plan's shape so a malformed schedule fails loudly
// before it silently skews a campaign.
func (p *Plan) Validate() error {
	for i, e := range p.Events {
		if e.Kind < 0 || int(e.Kind) >= len(kindNames) {
			return fmt.Errorf("faults: event %d: unknown kind %d", i, int(e.Kind))
		}
		if e.Start < 0 || e.End < e.Start {
			return fmt.Errorf("faults: event %d: bad window [%d, %d)", i, e.Start, e.End)
		}
		global := e.Kind == LinkDegrade || e.Kind == BalanceAbort
		if global && e.Node != -1 {
			return fmt.Errorf("faults: event %d: %v must be network-wide (Node=-1)", i, e.Kind)
		}
		if !global && e.Node < 0 {
			return fmt.Errorf("faults: event %d: %v needs a target node", i, e.Kind)
		}
		if e.Kind == LinkDegrade && (e.SuccessRate < 0 || e.SuccessRate > 1) {
			return fmt.Errorf("faults: event %d: success rate %v outside [0,1]", i, e.SuccessRate)
		}
	}
	return nil
}

// Active counts the events covering the round.
func (p *Plan) Active(round int) int {
	n := 0
	for _, e := range p.Events {
		if e.Active(round) {
			n++
		}
	}
	return n
}

// LastEnd reports the first round by which every event has cleared (0 for
// an empty plan) — the earliest point recovery can be measured from.
func (p *Plan) LastEnd() int {
	last := 0
	for _, e := range p.Events {
		if e.End > last {
			last = e.End
		}
	}
	return last
}

// byKind partitions the events for the per-hook scans.
func (p *Plan) byKind(k Kind) []Event {
	var out []Event
	for _, e := range p.Events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

func nodeHook(events []Event) func(phys, round int) bool {
	if len(events) == 0 {
		return nil
	}
	return func(phys, round int) bool {
		for _, e := range events {
			if (e.Node == phys || e.Node == -1) && e.Active(round) {
				return true
			}
		}
		return false
	}
}

// Hooks compiles the plan into the simulator's fault-injection points.
// Kinds with no events compile to nil hooks, so an empty plan is the
// FaultHooks zero value and leaves a run bit-identical to a clean one.
func (p *Plan) Hooks() sim.FaultHooks {
	h := sim.FaultHooks{
		NodeDown:    nodeHook(p.byKind(Crash)),
		Blackout:    nodeHook(p.byKind(Blackout)),
		RFFailed:    nodeHook(p.byKind(RFInitFail)),
		SensorStuck: nodeHook(p.byKind(SensorStuck)),
	}
	if links := p.byKind(LinkDegrade); len(links) > 0 {
		h.Link = func(round int) (mesh.LinkModel, bool) {
			// Overlapping degradations compound to the worst one.
			rate, hit := 1.0, false
			for _, e := range links {
				if e.Active(round) && (!hit || e.SuccessRate < rate) {
					rate, hit = e.SuccessRate, true
				}
			}
			return mesh.LinkModel{SuccessRate: rate}, hit
		}
	}
	if aborts := p.byKind(BalanceAbort); len(aborts) > 0 {
		h.AbortBalance = func(round int) bool {
			for _, e := range aborts {
				if e.Active(round) {
					return true
				}
			}
			return false
		}
	}
	return h
}

// Apply installs the plan's hooks on the config.
func (p *Plan) Apply(cfg *sim.Config) { cfg.Faults = p.Hooks() }

// GenConfig shapes seeded plan generation.
type GenConfig struct {
	// Nodes is the physical node count of the target run; Rounds its RTC
	// slot count. Both are required.
	Nodes, Rounds int
	// MaxEvents is the event count at intensity 1 (default 2×Nodes).
	MaxEvents int
	// WindowStart and WindowEnd bound the fault window as fractions of
	// the run (defaults 0.25 and 0.60): all generated events start and
	// clear inside it, leaving a clean tail to measure recovery against.
	WindowStart, WindowEnd float64
}

func (g GenConfig) withDefaults() GenConfig {
	if g.MaxEvents == 0 {
		g.MaxEvents = 2 * g.Nodes
	}
	if g.WindowStart == 0 && g.WindowEnd == 0 {
		g.WindowStart, g.WindowEnd = 0.25, 0.60
	}
	return g
}

// Generate builds a seeded plan at the given intensity in [0, 1]. Plans
// are nested: for a fixed seed and GenConfig, a lower-intensity plan's
// events are a prefix of a higher-intensity plan's, so sweeping intensity
// compares supersets of the same adversity rather than unrelated draws.
func Generate(seed int64, intensity float64, gc GenConfig) (*Plan, error) {
	gc = gc.withDefaults()
	if gc.Nodes <= 0 || gc.Rounds <= 0 {
		return nil, fmt.Errorf("faults: generation needs a run shape (nodes=%d, rounds=%d)", gc.Nodes, gc.Rounds)
	}
	if intensity < 0 || intensity > 1 {
		return nil, fmt.Errorf("faults: intensity %v outside [0, 1]", intensity)
	}
	if gc.WindowStart < 0 || gc.WindowEnd > 1 || gc.WindowEnd <= gc.WindowStart {
		return nil, fmt.Errorf("faults: bad fault window [%v, %v)", gc.WindowStart, gc.WindowEnd)
	}

	lo := int(gc.WindowStart * float64(gc.Rounds))
	hi := int(gc.WindowEnd * float64(gc.Rounds))
	if hi <= lo {
		hi = lo + 1
	}
	span := hi - lo
	maxDur := span / 4
	if maxDur < 1 {
		maxDur = 1
	}

	rng := rand.New(rand.NewSource(seed))
	all := make([]Event, 0, gc.MaxEvents)
	for i := 0; i < gc.MaxEvents; i++ {
		kind := Kind(rng.Intn(len(kindNames)))
		start := lo + rng.Intn(span)
		dur := 1 + rng.Intn(maxDur)
		end := start + dur
		if end > hi {
			end = hi
		}
		e := Event{Kind: kind, Node: rng.Intn(gc.Nodes), Start: start, End: end}
		switch kind {
		case LinkDegrade:
			e.Node = -1
			e.SuccessRate = 0.3 + 0.5*rng.Float64()
		case BalanceAbort:
			e.Node = -1
		}
		all = append(all, e)
	}

	take := int(math.Ceil(intensity * float64(gc.MaxEvents)))
	if take > len(all) {
		take = len(all)
	}
	p := &Plan{Events: all[:take]}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// CountByKind reports how many events of each kind the plan holds, in
// Kind order — the per-plan summary the campaign report prints.
func (p *Plan) CountByKind() []int {
	out := make([]int, len(kindNames))
	for _, e := range p.Events {
		out[e.Kind]++
	}
	return out
}

// Describe renders the plan as stable one-line-per-event text (sorted by
// start round, then kind, then node) for reports and golden tests.
func (p *Plan) Describe() []string {
	evs := append([]Event(nil), p.Events...)
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Start != evs[j].Start {
			return evs[i].Start < evs[j].Start
		}
		if evs[i].Kind != evs[j].Kind {
			return evs[i].Kind < evs[j].Kind
		}
		return evs[i].Node < evs[j].Node
	})
	out := make([]string, len(evs))
	for i, e := range evs {
		s := fmt.Sprintf("%s node=%d rounds=[%d,%d)", e.Kind, e.Node, e.Start, e.End)
		if e.Kind == LinkDegrade {
			s = fmt.Sprintf("%s success=%.3f rounds=[%d,%d)", e.Kind, e.SuccessRate, e.Start, e.End)
		}
		out[i] = s
	}
	return out
}
