package faults

import (
	"fmt"
	"reflect"
	"sync"

	"neofog/internal/metrics"
	"neofog/internal/sim"
)

// ResilienceCampaign A/B-tests the self-healing protocol layer under the
// chaos sweep: every intensity runs twice from the same base configuration
// and fault plan — once with recovery disabled (the off arm) and once with
// it enabled (the on arm) — and the campaign asserts that recovery weakly
// dominates at every intensity and strictly improves somewhere. The on arm
// only switches recovery on when the generated plan actually injects
// events, so the zero-intensity anchor is the literal same run in both
// arms and must come out bit-identical.
type ResilienceCampaign struct {
	// Base is the shared configuration. The campaign owns its Faults,
	// Journal, and Recovery fields; all three must be zero.
	Base sim.Config
	// Recovery carries the on arm's tunables; Enabled is set by the
	// campaign per intensity (only when the plan is non-empty).
	Recovery sim.RecoveryConfig
	// Intensities are the sweep points, non-decreasing in [0, 1] and
	// starting at 0. Default {0, 0.25, 0.5, 0.75, 1}.
	Intensities []float64
	// Gen shapes plan generation; Nodes and Rounds are filled in from
	// Base when zero.
	Gen GenConfig
	// Seed drives plan generation (independent of Base.Seed).
	Seed int64
	// Tolerance is the relative slack the weak-dominance check allows the
	// on arm to fall short by (default 0.02, absolute floor 3 packets, the
	// same slack the chaos campaign's monotonicity check uses): the
	// recovery path perturbs the run's RNG stream, so a faulted pair can
	// jitter by a little even when recovery systematically wins. The
	// strict-improvement invariant and the golden table carry the positive
	// claim with no slack at all.
	Tolerance float64
	// Parallel is the worker-pool width for the intensity points, resolved
	// exactly like Campaign.Parallel. Each point still runs its two arms
	// concurrently, so up to 2×width simulations are in flight. Reports,
	// invariant verdicts, and surfaced errors are identical at any width.
	Parallel int
}

// ArmPoint is one intensity's paired outcome.
type ArmPoint struct {
	Intensity float64
	// Events is the number of fault events both arms faced.
	Events int
	// Off is the run with recovery disabled; On with it enabled.
	Off, On sim.Result
}

// ResilienceReport is a completed A/B campaign.
type ResilienceReport struct {
	Points []ArmPoint
	// Table is the per-intensity A/B report.
	Table *metrics.Table
}

func (c ResilienceCampaign) withDefaults() (ResilienceCampaign, error) {
	if len(c.Intensities) == 0 {
		c.Intensities = []float64{0, 0.25, 0.5, 0.75, 1}
	}
	if c.Intensities[0] != 0 {
		return c, fmt.Errorf("faults: resilience campaign needs a zero-intensity anchor first, got %v", c.Intensities[0])
	}
	for i, x := range c.Intensities {
		if x < 0 || x > 1 {
			return c, fmt.Errorf("faults: intensity %v outside [0, 1]", x)
		}
		if i > 0 && x < c.Intensities[i-1] {
			return c, fmt.Errorf("faults: intensities must be non-decreasing, got %v after %v", x, c.Intensities[i-1])
		}
	}
	if c.Tolerance == 0 {
		c.Tolerance = 0.02
	}
	if c.Base.Journal != nil {
		return c, fmt.Errorf("faults: resilience campaign owns the journal; Base.Journal must be nil")
	}
	if c.Base.Recovery != (sim.RecoveryConfig{}) {
		return c, fmt.Errorf("faults: resilience campaign owns the recovery switch; Base.Recovery must be zero")
	}
	f := c.Base.Faults
	if f.NodeDown != nil || f.Blackout != nil || f.RFFailed != nil ||
		f.SensorStuck != nil || f.Link != nil || f.AbortBalance != nil {
		return c, fmt.Errorf("faults: resilience campaign owns the fault hooks; Base.Faults must be empty")
	}
	if len(c.Base.Traces) == 0 || c.Base.Slot <= 0 {
		return c, fmt.Errorf("faults: resilience campaign base config needs traces and a slot")
	}
	if c.Gen.Nodes == 0 {
		c.Gen.Nodes = len(c.Base.Traces)
	}
	if c.Gen.Rounds == 0 {
		rounds := c.Base.Rounds
		if maxRounds := int(c.Base.Traces[0].Duration() / c.Base.Slot); rounds == 0 || rounds > maxRounds {
			rounds = maxRounds
		}
		c.Gen.Rounds = rounds
	}
	c.Gen = c.Gen.withDefaults()
	return c, nil
}

// Run executes the paired sweep and checks the A/B invariants, returning
// an error naming the first violated one.
func (c ResilienceCampaign) Run() (*ResilienceReport, error) {
	c, err := c.withDefaults()
	if err != nil {
		return nil, err
	}

	// Run phase: the paired points fan out through the pool (each still
	// running its two arms concurrently); all per-point invariants live in
	// runArmPoint. The scan below is in input order, so the cross-point
	// strict-improvement verdict and which error surfaces match the serial
	// sweep exactly.
	pts := make([]ArmPoint, len(c.Intensities))
	errs := make([]error, len(c.Intensities))
	runIndexed(len(c.Intensities), poolWidth(c.Parallel),
		func(i int) { pts[i], errs[i] = c.runArmPoint(c.Intensities[i]) },
		func(i int) bool { return errs[i] != nil })

	rep := &ResilienceReport{}
	strict := false
	for i := range pts {
		if errs[i] != nil {
			return nil, errs[i]
		}
		pt := pts[i]
		if pt.Intensity > 0 && pt.On.TotalProcessed() > pt.Off.TotalProcessed() {
			strict = true
		}
		rep.Points = append(rep.Points, pt)
	}

	// Invariant: somewhere in the sweep recovery must actually help, or
	// the whole layer is dead weight. A sweep whose plans never injected
	// anything has no adversity to recover from, which is its own error.
	events := 0
	for _, pt := range rep.Points {
		events += pt.Events
	}
	if events == 0 {
		return nil, fmt.Errorf("faults: sweep injected no fault events; nothing for recovery to prove")
	}
	if !strict {
		return nil, fmt.Errorf("faults: recovery never strictly improved delivery at any nonzero intensity")
	}

	rep.Table = c.table(rep)
	return rep, nil
}

// runArmPoint executes one intensity's A/B pair and its per-point
// invariants. It reads only the immutable campaign fields, so points can
// run concurrently.
func (c ResilienceCampaign) runArmPoint(intensity float64) (ArmPoint, error) {
	plan, err := Generate(c.Seed, intensity, c.Gen)
	if err != nil {
		return ArmPoint{}, err
	}

	offCfg, onCfg := c.Base, c.Base
	plan.Apply(&offCfg)
	plan.Apply(&onCfg)
	onCfg.Recovery = c.Recovery
	// Recovery only arms against actual adversity: with an empty plan
	// the on arm is the identical control run, which anchors the A/B.
	onCfg.Recovery.Enabled = len(plan.Events) > 0

	// The two arms are independent simulations; running them
	// concurrently halves the sweep and puts the recovery path under
	// the race detector whenever the campaign runs with -race.
	var off, on sim.Result
	var offErr, onErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); off, offErr = sim.Run(offCfg) }()
	go func() { defer wg.Done(); on, onErr = sim.Run(onCfg) }()
	wg.Wait()
	if offErr != nil {
		return ArmPoint{}, fmt.Errorf("faults: intensity %v (recovery off): %w", intensity, offErr)
	}
	if onErr != nil {
		return ArmPoint{}, fmt.Errorf("faults: intensity %v (recovery on): %w", intensity, onErr)
	}

	// Invariant: conservation holds exactly in both arms.
	for _, arm := range []struct {
		name string
		r    sim.Result
	}{{"off", off}, {"on", on}} {
		if !arm.r.Conserved() {
			return ArmPoint{}, fmt.Errorf("faults: intensity %v (recovery %s) breaks conservation: %d samples vs %d fog + %d cloud + %d dropped + %d lost + %d unexecuted + %d queued",
				intensity, arm.name, arm.r.Samples, arm.r.FogProcessed, arm.r.CloudProcessed,
				arm.r.Dropped, arm.r.LostRaw, arm.r.Unexecuted, arm.r.QueuedEnd)
		}
	}
	// Invariant: the off arm must never exercise the recovery path.
	if off.Retransmits != 0 || off.FailoverSlots != 0 || off.BalanceRetries != 0 {
		return ArmPoint{}, fmt.Errorf("faults: intensity %v: recovery counters active in the off arm: %d retransmits, %d failovers, %d balance retries",
			intensity, off.Retransmits, off.FailoverSlots, off.BalanceRetries)
	}
	// Invariant: with no events the arms are the same run, bit for bit.
	if len(plan.Events) == 0 && !reflect.DeepEqual(off, on) {
		return ArmPoint{}, fmt.Errorf("faults: intensity %v: zero-event arms diverged:\noff: %+v\non:  %+v", intensity, off, on)
	}
	// Invariant: recovery weakly dominates on delivered packets and on
	// fog tasks at every intensity (modulo RNG-jitter slack).
	slack := func(off int) float64 {
		s := c.Tolerance * float64(off)
		if s < 3 {
			s = 3
		}
		return s
	}
	if float64(on.TotalProcessed()) < float64(off.TotalProcessed())-slack(off.TotalProcessed()) {
		return ArmPoint{}, fmt.Errorf("faults: intensity %v: recovery lost packets: %d on vs %d off",
			intensity, on.TotalProcessed(), off.TotalProcessed())
	}
	if float64(on.FogProcessed) < float64(off.FogProcessed)-slack(off.FogProcessed) {
		return ArmPoint{}, fmt.Errorf("faults: intensity %v: recovery lost fog tasks: %d on vs %d off",
			intensity, on.FogProcessed, off.FogProcessed)
	}
	return ArmPoint{Intensity: intensity, Events: len(plan.Events), Off: off, On: on}, nil
}

// table renders the paired sweep as the resilience A/B report.
func (c ResilienceCampaign) table(rep *ResilienceReport) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Resilience A/B: %d nodes, %d rounds, fault seed %d (off = no recovery, on = ARQ + failover + lease)",
			c.Gen.Nodes, c.Gen.Rounds, c.Seed),
		"Intensity", "Events", "OffFog", "OffCloud", "OffTotal", "OnFog", "OnCloud",
		"OnTotal", "DeltaTotal", "Retransmits", "Failovers", "BalRetries",
		"OffOrphans", "OnOrphans",
	)
	for _, pt := range rep.Points {
		t.AddRow(
			metrics.Ftoa(pt.Intensity, 2), metrics.Itoa(pt.Events),
			metrics.Itoa(pt.Off.FogProcessed), metrics.Itoa(pt.Off.CloudProcessed),
			metrics.Itoa(pt.Off.TotalProcessed()),
			metrics.Itoa(pt.On.FogProcessed), metrics.Itoa(pt.On.CloudProcessed),
			metrics.Itoa(pt.On.TotalProcessed()),
			metrics.Itoa(pt.On.TotalProcessed()-pt.Off.TotalProcessed()),
			metrics.Itoa(pt.On.Retransmits), metrics.Itoa(pt.On.FailoverSlots),
			metrics.Itoa(pt.On.BalanceRetries),
			metrics.Itoa(pt.Off.OrphanLost), metrics.Itoa(pt.On.OrphanLost),
		)
	}
	return t
}
