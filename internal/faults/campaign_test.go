package faults

import (
	"reflect"
	"strings"
	"testing"

	"neofog/internal/sim"
)

func TestCampaignRun(t *testing.T) {
	c := Campaign{Base: baseConfig(t, 400, 10), Seed: 5}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 5 {
		t.Fatalf("points = %d, want the default 5 intensities", len(rep.Points))
	}
	if len(rep.Table.Rows) != 5 {
		t.Fatalf("table rows = %d, want 5", len(rep.Table.Rows))
	}

	// The zero-intensity point is exactly the plain run of Base (plus the
	// campaign's journal, which must not perturb anything).
	plain, err := sim.Run(c.Base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Points[0].Result, plain) {
		t.Fatal("campaign baseline diverged from a plain run of Base")
	}
	if rep.Points[0].Events != 0 {
		t.Fatalf("baseline injected %d events", rep.Points[0].Events)
	}

	// Intensity and event count rise along the sweep; the full-intensity
	// point carries visible damage.
	for i := 1; i < len(rep.Points); i++ {
		if rep.Points[i].Events < rep.Points[i-1].Events {
			t.Fatalf("event count fell along the sweep: %d after %d",
				rep.Points[i].Events, rep.Points[i-1].Events)
		}
	}
	last := rep.Points[len(rep.Points)-1].Result
	if last.CrashedSlots+last.StuckSamples+last.LostInFlight == 0 {
		t.Fatal("full intensity left no trace of injected faults")
	}
	if rep.TailStart >= c.Base.Rounds {
		t.Fatalf("recovery window [%d, %d) is empty", rep.TailStart, c.Base.Rounds)
	}
}

func TestCampaignDeterminism(t *testing.T) {
	mk := func() string {
		rep, err := Campaign{Base: baseConfig(t, 400, 11), Seed: 6}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.Table.Format()
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("campaign report nondeterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "Chaos campaign") {
		t.Fatalf("report missing title:\n%s", a)
	}
}

func TestCampaignRejectsBadSetups(t *testing.T) {
	base := baseConfig(t, 200, 12)

	c := Campaign{Base: base, Intensities: []float64{0.5, 1}}
	if _, err := c.Run(); err == nil {
		t.Error("missing zero baseline should error")
	}
	c = Campaign{Base: base, Intensities: []float64{0, 1, 0.5}}
	if _, err := c.Run(); err == nil {
		t.Error("decreasing intensities should error")
	}
	c = Campaign{Base: base, Intensities: []float64{0, 2}}
	if _, err := c.Run(); err == nil {
		t.Error("out-of-range intensity should error")
	}

	withJournal := base
	withJournal.Journal = &strings.Builder{}
	if _, err := (Campaign{Base: withJournal}).Run(); err == nil {
		t.Error("a pre-set journal should be rejected")
	}

	withHooks := base
	withHooks.Faults.AbortBalance = func(int) bool { return false }
	if _, err := (Campaign{Base: withHooks}).Run(); err == nil {
		t.Error("pre-set fault hooks should be rejected")
	}

	if _, err := (Campaign{}).Run(); err == nil {
		t.Error("an empty base config should be rejected")
	}
}
