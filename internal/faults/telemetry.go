package faults

import (
	"neofog/internal/mesh"
	"neofog/internal/sim"
	"neofog/internal/telemetry"
)

// InstrumentHooks wraps a set of fault hooks so every activation is
// counted in the telemetry registry: faults.node_down, faults.blackout,
// faults.rf_failed, faults.sensor_stuck, faults.link_degraded and
// faults.balance_abort. The wrapped hooks return exactly what the
// originals return — instrumentation observes, never perturbs — and nil
// hooks stay nil, so an empty plan still compiles to the zero FaultHooks.
// A nil recorder returns h unchanged. Like the Recorder itself the
// wrapper is not safe for concurrent use: give each chain its own
// recorder (RunFleet does this automatically).
func InstrumentHooks(h sim.FaultHooks, tel *telemetry.Recorder) sim.FaultHooks {
	if !tel.Enabled() {
		return h
	}
	wrap := func(inner func(phys, round int) bool, name string) func(phys, round int) bool {
		if inner == nil {
			return nil
		}
		return func(phys, round int) bool {
			hit := inner(phys, round)
			if hit {
				tel.Count(name, 1)
			}
			return hit
		}
	}
	out := sim.FaultHooks{
		NodeDown:    wrap(h.NodeDown, "faults.node_down"),
		Blackout:    wrap(h.Blackout, "faults.blackout"),
		RFFailed:    wrap(h.RFFailed, "faults.rf_failed"),
		SensorStuck: wrap(h.SensorStuck, "faults.sensor_stuck"),
	}
	if h.Link != nil {
		out.Link = func(round int) (mesh.LinkModel, bool) {
			lm, ok := h.Link(round)
			if ok {
				tel.Count("faults.link_degraded", 1)
			}
			return lm, ok
		}
	}
	if h.AbortBalance != nil {
		out.AbortBalance = func(round int) bool {
			hit := h.AbortBalance(round)
			if hit {
				tel.Count("faults.balance_abort", 1)
			}
			return hit
		}
	}
	return out
}
