package faults

import (
	"math/rand"
	"strings"
	"testing"

	"neofog/internal/energytrace"
	"neofog/internal/sim"
	"neofog/internal/units"
	"neofog/internal/virt"
)

// cloneBaseConfig pairs every logical node of baseConfig with an NVD4Q
// clone: the deployment where the recovery layer has a real lever (a
// crashed slot owner's phase can be absorbed by its partner).
func cloneBaseConfig(t *testing.T, rounds int, seed int64) sim.Config {
	t.Helper()
	cfg := baseConfig(t, rounds, seed)
	n := len(cfg.Traces)
	tc := energytrace.SunnyDay()
	tc.Peak = units.Power(0.7)
	cfg.Traces = energytrace.IndependentSet(tc, 2*n, 5*units.Minute, rand.New(rand.NewSource(seed)))
	sets := make([]virt.LogicalNode, n)
	for i := range sets {
		sets[i] = virt.LogicalNode{ID: i, Clones: []int{i, n + i}}
	}
	cfg.CloneSets = sets
	return cfg
}

func TestResilienceCampaignRun(t *testing.T) {
	c := ResilienceCampaign{Base: cloneBaseConfig(t, 400, 10), Seed: 5}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 5 {
		t.Fatalf("points = %d, want the default 5 intensities", len(rep.Points))
	}
	if len(rep.Table.Rows) != 5 {
		t.Fatalf("table rows = %d, want 5", len(rep.Table.Rows))
	}
	// The invariants (zero-intensity bit-identity, conservation, weak
	// dominance, strict improvement somewhere) are asserted inside Run;
	// here we spot-check the visible shape of the outcome.
	if rep.Points[0].Events != 0 {
		t.Fatalf("anchor injected %d events", rep.Points[0].Events)
	}
	if rep.Points[0].On.Retransmits != 0 {
		t.Fatal("the zero-intensity on arm must not arm recovery")
	}
	var recoveryUsed bool
	for _, pt := range rep.Points[1:] {
		if pt.On.Retransmits+pt.On.FailoverSlots+pt.On.BalanceRetries > 0 {
			recoveryUsed = true
		}
	}
	if !recoveryUsed {
		t.Fatal("no faulted point ever exercised the recovery layer")
	}
}

func TestResilienceCampaignDeterminism(t *testing.T) {
	mk := func() string {
		rep, err := ResilienceCampaign{Base: cloneBaseConfig(t, 400, 11), Seed: 6}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.Table.Format()
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("resilience report nondeterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "Resilience A/B") {
		t.Fatalf("report missing title:\n%s", a)
	}
}

func TestResilienceCampaignRejectsBadSetups(t *testing.T) {
	base := cloneBaseConfig(t, 200, 12)

	c := ResilienceCampaign{Base: base, Intensities: []float64{0.5, 1}}
	if _, err := c.Run(); err == nil {
		t.Error("missing zero anchor should error")
	}
	c = ResilienceCampaign{Base: base, Intensities: []float64{0, 1, 0.5}}
	if _, err := c.Run(); err == nil {
		t.Error("decreasing intensities should error")
	}

	withRecovery := base
	withRecovery.Recovery.Enabled = true
	if _, err := (ResilienceCampaign{Base: withRecovery}).Run(); err == nil {
		t.Error("a pre-armed recovery config should be rejected")
	}

	withJournal := base
	withJournal.Journal = &strings.Builder{}
	if _, err := (ResilienceCampaign{Base: withJournal}).Run(); err == nil {
		t.Error("a pre-set journal should be rejected")
	}

	withHooks := base
	withHooks.Faults.NodeDown = func(int, int) bool { return false }
	if _, err := (ResilienceCampaign{Base: withHooks}).Run(); err == nil {
		t.Error("pre-set fault hooks should be rejected")
	}

	if _, err := (ResilienceCampaign{}).Run(); err == nil {
		t.Error("an empty base config should be rejected")
	}
}

// The off arm of every point must be bit-identical to the matching point
// of the plain chaos campaign: the A/B changes nothing about how faults
// are generated or applied.
func TestResilienceOffArmMatchesChaos(t *testing.T) {
	base := cloneBaseConfig(t, 400, 13)
	chaos, err := Campaign{Base: base, Seed: 9}.Run()
	if err != nil {
		t.Fatal(err)
	}
	ab, err := ResilienceCampaign{Base: base, Seed: 9}.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range ab.Points {
		cp := chaos.Points[i].Result
		// The chaos campaign journals its runs and the A/B does not, so
		// compare the packet ledger rather than reflect.DeepEqual.
		if pt.Off.Samples != cp.Samples || pt.Off.FogProcessed != cp.FogProcessed ||
			pt.Off.CloudProcessed != cp.CloudProcessed || pt.Off.Dropped != cp.Dropped ||
			pt.Off.LostRaw != cp.LostRaw || pt.Off.QueuedEnd != cp.QueuedEnd {
			t.Fatalf("intensity %v: off arm diverged from chaos point:\noff:   %+v\nchaos: %+v",
				pt.Intensity, pt.Off, cp)
		}
	}
}

// Tolerance loosens the weak-dominance check without disabling the
// conservation or anchor invariants.
func TestResilienceTolerance(t *testing.T) {
	c := ResilienceCampaign{Base: cloneBaseConfig(t, 400, 10), Seed: 5, Tolerance: 0.2}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	var zero sim.RecoveryConfig
	if zero.Enabled {
		t.Fatal("zero recovery config must be disabled")
	}
}
