package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sync"

	"neofog/internal/metrics"
	"neofog/internal/sim"
)

// Campaign sweeps fault intensity over one base configuration and asserts
// the graceful-degradation invariants on every run: exact packet
// conservation, monotone non-improvement as intensity rises, and recovery
// of the wake and processing rates once the fault window clears. Because
// generated plans are nested (see Generate), each step up in intensity
// faces a superset of the previous step's adversity.
type Campaign struct {
	// Base is the fault-free configuration every run shares. Its Journal
	// must be nil (the campaign installs its own to measure recovery) and
	// its Faults must be empty (the campaign owns the hooks).
	Base sim.Config
	// Intensities are the sweep points, non-decreasing in [0, 1] and
	// starting at 0 — the zero-fault run is the baseline all invariants
	// are judged against. Default {0, 0.25, 0.5, 0.75, 1}.
	Intensities []float64
	// Gen shapes plan generation; Nodes and Rounds are filled in from
	// Base when zero.
	Gen GenConfig
	// Seed drives plan generation (independent of Base.Seed, which
	// drives the simulation itself).
	Seed int64
	// Tolerance is the relative slack allowed by the monotonicity check
	// (default 0.02): injected faults perturb the run's RNG stream, so
	// adjacent intensities can jitter by a little even though the trend
	// must not improve.
	Tolerance float64
	// RecoveryFloor is the fraction of the baseline tail-window rates a
	// faulted run must regain after its faults clear (default 0.7).
	RecoveryFloor float64
	// Parallel is the worker-pool width for the intensity points: 0 or 1
	// runs them serially (the default), N > 1 runs up to N concurrently,
	// and a negative value uses every available CPU (bounded by GOMAXPROCS
	// either way). Every point is an independent simulation, so the report,
	// the invariant verdicts, and which error surfaces are identical at any
	// width — the cross-point checks always scan the points in input order.
	Parallel int
}

// poolWidth resolves a Parallel knob to a bounded worker count, the same
// way experiments.Options and sim.RunFleet bound their fan-out.
func poolWidth(parallel int) int {
	w := parallel
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if max := runtime.GOMAXPROCS(0); w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runIndexed runs fn(i) for i in [0, n) with up to w concurrent workers.
// Serially (w <= 1) it stops after the first index for which stop(i)
// reports true, matching the historical early-abort loop; in parallel every
// index runs and the caller's in-order scan discards results past the first
// error, so the observable outcome is the same.
func runIndexed(n, w int, fn func(int), stop func(int) bool) {
	if w <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
			if stop(i) {
				break
			}
		}
		return
	}
	sem := make(chan struct{}, w)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// Point is one intensity's outcome.
type Point struct {
	Intensity float64
	// Events is the number of fault events injected; Plan the schedule.
	Events int
	Plan   *Plan
	Result sim.Result
	// TailWakeRate and TailProcRate are the per-round awake-node and
	// processed-packet (fog + cloud) rates over the tail window, after
	// every fault has cleared — the recovery signal.
	TailWakeRate, TailProcRate float64
}

// Report is a completed campaign.
type Report struct {
	Points []Point
	// TailStart is the first round of the recovery window the tail rates
	// are measured over.
	TailStart int
	// Table is the per-intensity degradation report.
	Table *metrics.Table
}

func (c Campaign) withDefaults() (Campaign, error) {
	if len(c.Intensities) == 0 {
		c.Intensities = []float64{0, 0.25, 0.5, 0.75, 1}
	}
	if c.Intensities[0] != 0 {
		return c, fmt.Errorf("faults: campaign needs a zero-intensity baseline first, got %v", c.Intensities[0])
	}
	for i, x := range c.Intensities {
		if x < 0 || x > 1 {
			return c, fmt.Errorf("faults: intensity %v outside [0, 1]", x)
		}
		if i > 0 && x < c.Intensities[i-1] {
			return c, fmt.Errorf("faults: intensities must be non-decreasing, got %v after %v", x, c.Intensities[i-1])
		}
	}
	if c.Tolerance == 0 {
		c.Tolerance = 0.02
	}
	if c.RecoveryFloor == 0 {
		c.RecoveryFloor = 0.7
	}
	if c.Base.Journal != nil {
		return c, fmt.Errorf("faults: campaign owns the journal; Base.Journal must be nil")
	}
	f := c.Base.Faults
	if f.NodeDown != nil || f.Blackout != nil || f.RFFailed != nil ||
		f.SensorStuck != nil || f.Link != nil || f.AbortBalance != nil {
		return c, fmt.Errorf("faults: campaign owns the fault hooks; Base.Faults must be empty")
	}
	if len(c.Base.Traces) == 0 || c.Base.Slot <= 0 {
		return c, fmt.Errorf("faults: campaign base config needs traces and a slot")
	}
	if c.Gen.Nodes == 0 {
		c.Gen.Nodes = len(c.Base.Traces)
	}
	if c.Gen.Rounds == 0 {
		rounds := c.Base.Rounds
		if maxRounds := int(c.Base.Traces[0].Duration() / c.Base.Slot); rounds == 0 || rounds > maxRounds {
			rounds = maxRounds
		}
		c.Gen.Rounds = rounds
	}
	c.Gen = c.Gen.withDefaults()
	return c, nil
}

// Run executes the sweep and checks every invariant, returning an error
// naming the first violated one.
func (c Campaign) Run() (*Report, error) {
	c, err := c.withDefaults()
	if err != nil {
		return nil, err
	}

	// The recovery window: after every generated fault has cleared, with
	// at least the last quarter of the run when the window allows it.
	rounds := c.Gen.Rounds
	tailStart := rounds - rounds/4
	if byWindow := int(math.Ceil(c.Gen.WindowEnd * float64(rounds))); tailStart < byWindow {
		tailStart = byWindow
	}
	if tailStart >= rounds {
		return nil, fmt.Errorf("faults: no recovery window left after round %d of %d", tailStart, rounds)
	}

	// Run phase: every intensity is an independent simulation against a
	// shared read-only base, so the points fan out through the pool. All
	// per-point work and per-point invariants live in runPoint; the
	// cross-point invariants below always scan in input order, so verdicts
	// and errors match the serial sweep exactly.
	pts := make([]Point, len(c.Intensities))
	errs := make([]error, len(c.Intensities))
	runIndexed(len(c.Intensities), poolWidth(c.Parallel),
		func(i int) { pts[i], errs[i] = c.runPoint(c.Intensities[i], tailStart, rounds) },
		func(i int) bool { return errs[i] != nil })

	rep := &Report{TailStart: tailStart}
	for i := range pts {
		if errs[i] != nil {
			return nil, errs[i]
		}
		pt := pts[i]
		// Invariant: more faults never process more data. The slack covers
		// RNG-stream jitter, never a real improvement.
		if n := len(rep.Points); n > 0 {
			prev := rep.Points[n-1]
			slack := c.Tolerance * float64(prev.Result.TotalProcessed())
			if slack < 3 {
				slack = 3
			}
			if float64(pt.Result.TotalProcessed()) > float64(prev.Result.TotalProcessed())+slack {
				return nil, fmt.Errorf("faults: intensity %v processed %d packets, more than %d at intensity %v",
					pt.Intensity, pt.Result.TotalProcessed(), prev.Result.TotalProcessed(), prev.Intensity)
			}
		}
		rep.Points = append(rep.Points, pt)
	}

	// Invariant: once the faults clear, every run's tail rates recover to
	// within RecoveryFloor of the zero-fault baseline.
	base := rep.Points[0]
	for _, pt := range rep.Points[1:] {
		if pt.TailWakeRate < c.RecoveryFloor*base.TailWakeRate {
			return nil, fmt.Errorf("faults: intensity %v wake rate %.2f/round never recovered (baseline %.2f/round)",
				pt.Intensity, pt.TailWakeRate, base.TailWakeRate)
		}
		if pt.TailProcRate < c.RecoveryFloor*base.TailProcRate {
			return nil, fmt.Errorf("faults: intensity %v processing rate %.2f/round never recovered (baseline %.2f/round)",
				pt.Intensity, pt.TailProcRate, base.TailProcRate)
		}
	}

	rep.Table = c.table(rep)
	return rep, nil
}

// runPoint executes one intensity end to end: plan generation, the
// simulation with a private journal, the tail-rate measurement, and the
// per-point conservation invariant. It touches nothing shared beyond the
// read-only base configuration, so points can run concurrently.
func (c Campaign) runPoint(intensity float64, tailStart, rounds int) (Point, error) {
	plan, err := Generate(c.Seed, intensity, c.Gen)
	if err != nil {
		return Point{}, err
	}
	if last := plan.LastEnd(); last > tailStart {
		return Point{}, fmt.Errorf("faults: plan at intensity %v runs to round %d, past the recovery window at %d",
			intensity, last, tailStart)
	}

	cfg := c.Base
	plan.Apply(&cfg)
	journal := &bytes.Buffer{}
	cfg.Journal = journal
	res, err := sim.Run(cfg)
	if err != nil {
		return Point{}, fmt.Errorf("faults: intensity %v: %w", intensity, err)
	}

	pt := Point{Intensity: intensity, Events: len(plan.Events), Plan: plan, Result: res}
	pt.TailWakeRate, pt.TailProcRate, err = tailRates(journal.Bytes(), tailStart, rounds)
	if err != nil {
		return Point{}, fmt.Errorf("faults: intensity %v: %w", intensity, err)
	}

	// Invariant: exact packet-accounting conservation, faults or not.
	if !res.Conserved() {
		return Point{}, fmt.Errorf("faults: intensity %v breaks conservation: %d samples vs %d fog + %d cloud + %d dropped + %d lost + %d unexecuted + %d queued",
			intensity, res.Samples, res.FogProcessed, res.CloudProcessed,
			res.Dropped, res.LostRaw, res.Unexecuted, res.QueuedEnd)
	}
	return pt, nil
}

// table renders the sweep as the chaos report.
func (c Campaign) table(rep *Report) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Chaos campaign: %d nodes, %d rounds, fault seed %d, recovery window from round %d",
			c.Gen.Nodes, c.Gen.Rounds, c.Seed, rep.TailStart),
		"Intensity", "Events", "Wakeups", "Samples", "Fog", "Cloud", "Dropped",
		"LostRaw", "LostResults", "Unexecuted", "Queued", "CrashedSlots",
		"StuckSamples", "TailWake/rnd", "TailProc/rnd",
	)
	for _, pt := range rep.Points {
		r := pt.Result
		t.AddRow(
			metrics.Ftoa(pt.Intensity, 2), metrics.Itoa(pt.Events),
			metrics.Itoa(r.Wakeups), metrics.Itoa(r.Samples),
			metrics.Itoa(r.FogProcessed), metrics.Itoa(r.CloudProcessed),
			metrics.Itoa(r.Dropped), metrics.Itoa(r.LostRaw),
			metrics.Itoa(r.LostResults), metrics.Itoa(r.Unexecuted),
			metrics.Itoa(r.QueuedEnd), metrics.Itoa(r.CrashedSlots),
			metrics.Itoa(r.StuckSamples),
			metrics.Ftoa(pt.TailWakeRate, 3), metrics.Ftoa(pt.TailProcRate, 3),
		)
	}
	return t
}

// tailRates parses the JSONL journal and averages the awake-node and
// processed-packet counts per round over [tailStart, rounds).
func tailRates(journal []byte, tailStart, rounds int) (wake, proc float64, err error) {
	dec := json.NewDecoder(bytes.NewReader(journal))
	n := 0
	for {
		var e struct {
			Round int `json:"round"`
			Awake int `json:"awake"`
			Fog   int `json:"fog"`
			Cloud int `json:"cloud"`
		}
		if err := dec.Decode(&e); err != nil {
			break
		}
		if e.Round < tailStart {
			continue
		}
		wake += float64(e.Awake)
		proc += float64(e.Fog + e.Cloud)
		n++
	}
	if n != rounds-tailStart {
		return 0, 0, fmt.Errorf("journal covered %d tail rounds, want %d", n, rounds-tailStart)
	}
	return wake / float64(n), proc / float64(n), nil
}
