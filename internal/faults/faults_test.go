package faults

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"neofog/internal/apps"
	"neofog/internal/energytrace"
	"neofog/internal/mesh"
	"neofog/internal/node"
	"neofog/internal/sched"
	"neofog/internal/sim"
	"neofog/internal/units"
)

func baseConfig(t *testing.T, rounds int, seed int64) sim.Config {
	t.Helper()
	cfg := energytrace.SunnyDay()
	cfg.Peak = units.Power(0.7)
	traces := energytrace.IndependentSet(cfg, 10, 5*units.Minute, rand.New(rand.NewSource(seed)))
	return sim.Config{
		Node:           node.DefaultConfig(node.FIOSNVMote, apps.BridgeHealth()),
		Traces:         traces,
		Slot:           12 * units.Second,
		Rounds:         rounds,
		Balancer:       sched.Distributed{},
		LBInterruption: 0.02,
		Link:           mesh.DefaultLink(),
		Seed:           7,
	}
}

func mustRun(t *testing.T, cfg sim.Config) sim.Result {
	t.Helper()
	r, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Crash: "crash", Blackout: "blackout", RFInitFail: "rf-init-fail",
		SensorStuck: "sensor-stuck", LinkDegrade: "link-degrade", BalanceAbort: "balance-abort",
		Kind(99): "Kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Events: []Event{{Kind: Kind(42), Node: 0, Start: 0, End: 1}}},
		{Events: []Event{{Kind: Crash, Node: 0, Start: 5, End: 3}}},
		{Events: []Event{{Kind: Crash, Node: 0, Start: -1, End: 3}}},
		{Events: []Event{{Kind: Crash, Node: -1, Start: 0, End: 1}}},
		{Events: []Event{{Kind: LinkDegrade, Node: 2, Start: 0, End: 1, SuccessRate: 0.5}}},
		{Events: []Event{{Kind: BalanceAbort, Node: 0, Start: 0, End: 1}}},
		{Events: []Event{{Kind: LinkDegrade, Node: -1, Start: 0, End: 1, SuccessRate: 1.5}}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("plan %d should fail validation", i)
		}
	}
	good := Plan{Events: []Event{
		{Kind: Crash, Node: 3, Start: 10, End: 20},
		{Kind: LinkDegrade, Node: -1, Start: 5, End: 9, SuccessRate: 0.4},
		{Kind: BalanceAbort, Node: -1, Start: 0, End: 100},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
}

func TestGenerateErrors(t *testing.T) {
	gc := GenConfig{Nodes: 10, Rounds: 100}
	if _, err := Generate(1, 0.5, GenConfig{}); err == nil {
		t.Error("missing run shape should error")
	}
	if _, err := Generate(1, -0.1, gc); err == nil {
		t.Error("negative intensity should error")
	}
	if _, err := Generate(1, 1.1, gc); err == nil {
		t.Error("intensity > 1 should error")
	}
	if _, err := Generate(1, 0.5, GenConfig{Nodes: 10, Rounds: 100, WindowStart: 0.8, WindowEnd: 0.2}); err == nil {
		t.Error("inverted window should error")
	}
}

func TestGenerateDeterministicAndNested(t *testing.T) {
	gc := GenConfig{Nodes: 10, Rounds: 1000}
	full, err := Generate(42, 1, gc)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Events) != 20 {
		t.Fatalf("full plan has %d events, want MaxEvents default 2×nodes = 20", len(full.Events))
	}
	again, err := Generate(42, 1, gc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, again) {
		t.Fatal("same seed produced different plans")
	}
	other, err := Generate(43, 1, gc)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(full, other) {
		t.Fatal("different seeds produced identical plans")
	}

	// Nesting: a lower-intensity plan is a prefix of the full plan.
	for _, intensity := range []float64{0, 0.1, 0.25, 0.5, 0.75} {
		p, err := Generate(42, intensity, gc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p.Events, full.Events[:len(p.Events)]) {
			t.Fatalf("intensity %v plan is not a prefix of the full plan", intensity)
		}
	}

	// Generated events stay inside the fault window.
	lo, hi := int(0.25*1000), int(0.60*1000)
	for i, e := range full.Events {
		if e.Start < lo || e.End > hi {
			t.Errorf("event %d window [%d,%d) escapes the fault window [%d,%d)", i, e.Start, e.End, lo, hi)
		}
	}
	if full.LastEnd() > hi {
		t.Fatalf("LastEnd %d past window end %d", full.LastEnd(), hi)
	}
}

func TestEmptyPlanCompilesToZeroHooks(t *testing.T) {
	var p Plan
	h := p.Hooks()
	if h.NodeDown != nil || h.Blackout != nil || h.RFFailed != nil ||
		h.SensorStuck != nil || h.Link != nil || h.AbortBalance != nil {
		t.Fatal("empty plan must compile to all-nil hooks")
	}
}

// The guarantee everything else rests on: installing a zero-event plan
// leaves a run bit-identical to one with no fault hooks at all.
func TestZeroPlanBitIdentical(t *testing.T) {
	cfg := baseConfig(t, 300, 1)
	var plainJ, faultJ bytes.Buffer
	plain := cfg
	plain.Journal = &plainJ
	withPlan := cfg
	withPlan.Journal = &faultJ
	(&Plan{}).Apply(&withPlan)

	a := mustRun(t, plain)
	b := mustRun(t, withPlan)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("zero-event plan perturbed the run:\n%+v\nvs\n%+v", a, b)
	}
	if !bytes.Equal(plainJ.Bytes(), faultJ.Bytes()) {
		t.Fatal("zero-event plan perturbed the journal")
	}
}

func TestCrashFault(t *testing.T) {
	cfg := baseConfig(t, 300, 2)
	clean := mustRun(t, cfg)

	faulted := cfg
	plan := &Plan{Events: []Event{
		{Kind: Crash, Node: 2, Start: 100, End: 140},
		{Kind: Crash, Node: 5, Start: 120, End: 150},
	}}
	plan.Apply(&faulted)
	r := mustRun(t, faulted)

	if r.CrashedSlots != 40+30 {
		t.Fatalf("CrashedSlots = %d, want 70 (every covered slot of a single-clone node)", r.CrashedSlots)
	}
	if r.PerNode[2].CrashedSlots != 40 || r.PerNode[5].CrashedSlots != 30 {
		t.Fatalf("per-node crashes = %d/%d, want 40/30",
			r.PerNode[2].CrashedSlots, r.PerNode[5].CrashedSlots)
	}
	if r.TotalProcessed() >= clean.TotalProcessed() {
		t.Fatalf("crashes should cost packets: %d vs clean %d",
			r.TotalProcessed(), clean.TotalProcessed())
	}
	if !r.Conserved() {
		t.Fatal("crash run breaks packet conservation")
	}
}

func TestRFInitFailFault(t *testing.T) {
	cfg := baseConfig(t, 300, 3)
	faulted := cfg
	plan := &Plan{Events: []Event{{Kind: RFInitFail, Node: 4, Start: 80, End: 160}}}
	plan.Apply(&faulted)
	r := mustRun(t, faulted)
	if r.PerNode[4].RFFailures == 0 {
		t.Fatal("an RF-failed node should record failed radio operations")
	}
	for i, s := range r.PerNode {
		if i != 4 && s.RFFailures != 0 {
			t.Fatalf("node %d records RF failures without a fault", i)
		}
	}
	if !r.Conserved() {
		t.Fatal("RF-failure run breaks packet conservation")
	}
}

func TestSensorStuckFault(t *testing.T) {
	cfg := baseConfig(t, 300, 4)
	faulted := cfg
	plan := &Plan{Events: []Event{{Kind: SensorStuck, Node: 1, Start: 50, End: 120}}}
	plan.Apply(&faulted)
	clean := mustRun(t, cfg)
	r := mustRun(t, faulted)
	if r.StuckSamples == 0 || r.StuckSamples > 70 {
		t.Fatalf("StuckSamples = %d, want in (0, 70]", r.StuckSamples)
	}
	// The node cannot tell its sensor is stuck: the packets still flow.
	if r.TotalProcessed() != clean.TotalProcessed() {
		t.Fatalf("a stuck sensor must not change packet flow: %d vs %d",
			r.TotalProcessed(), clean.TotalProcessed())
	}
}

func TestLinkDegradeFault(t *testing.T) {
	cfg := baseConfig(t, 300, 5)
	clean := mustRun(t, cfg)
	faulted := cfg
	plan := &Plan{Events: []Event{{Kind: LinkDegrade, Node: -1, Start: 60, End: 200, SuccessRate: 0.5}}}
	plan.Apply(&faulted)
	r := mustRun(t, faulted)
	if r.LostInFlight <= clean.LostInFlight {
		t.Fatalf("a degraded link should lose more packets: %d vs clean %d",
			r.LostInFlight, clean.LostInFlight)
	}
	if !r.Conserved() {
		t.Fatal("link-degrade run breaks packet conservation")
	}
}

func TestLinkDegradeWorstOverlapWins(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: LinkDegrade, Node: -1, Start: 10, End: 30, SuccessRate: 0.8},
		{Kind: LinkDegrade, Node: -1, Start: 20, End: 40, SuccessRate: 0.4},
	}}
	h := p.Hooks()
	for _, tc := range []struct {
		round int
		rate  float64
		ok    bool
	}{{5, 0, false}, {15, 0.8, true}, {25, 0.4, true}, {35, 0.4, true}, {45, 0, false}} {
		lm, ok := h.Link(tc.round)
		if ok != tc.ok || (ok && lm.SuccessRate != tc.rate) {
			t.Errorf("round %d: got (%v, %v), want (%v, %v)", tc.round, lm.SuccessRate, ok, tc.rate, tc.ok)
		}
	}
}

func TestBlackoutFault(t *testing.T) {
	cfg := baseConfig(t, 400, 6)
	clean := mustRun(t, cfg)
	faulted := cfg
	var events []Event
	for n := 0; n < 10; n++ {
		events = append(events, Event{Kind: Blackout, Node: n, Start: 100, End: 250})
	}
	plan := &Plan{Events: events}
	plan.Apply(&faulted)
	r := mustRun(t, faulted)
	if r.TotalProcessed() >= clean.TotalProcessed() {
		t.Fatalf("a fleet-wide 30-minute blackout should cost packets: %d vs clean %d",
			r.TotalProcessed(), clean.TotalProcessed())
	}
	if !r.Conserved() {
		t.Fatal("blackout run breaks packet conservation")
	}
}

// movesSpy wraps a balancer and counts the task delegations it plans —
// the observable that an injected mid-balancing abort must zero out.
type movesSpy struct {
	inner   sched.Balancer
	planned int
}

func (s *movesSpy) Name() string { return s.inner.Name() }
func (s *movesSpy) Plan(nodes []sched.NodeLoad, maxTime int, intr float64, rng *rand.Rand) sched.Plan {
	p := s.inner.Plan(nodes, maxTime, intr, rng)
	for _, m := range p.Moves {
		s.planned += m.Count
	}
	return p
}

func TestBalanceAbortFault(t *testing.T) {
	// Scarce, heterogeneous income with a light kernel: some nodes hold
	// backlog while others have spare capacity, so balancing has work.
	mk := func() sim.Config {
		cfg := baseConfig(t, 0, 7)
		cfg.Node.FogInstsPerByte = 500
		sc := energytrace.RainyDay()
		sc.Peak = 0.3 * units.Milliwatt
		cfg.Traces = energytrace.DependentSet(sc, 10, 0.5, rand.New(rand.NewSource(5)))
		return cfg
	}
	clean := mk()
	cleanSpy := &movesSpy{inner: sched.Distributed{}}
	clean.Balancer = cleanSpy
	mustRun(t, clean)
	if cleanSpy.planned == 0 {
		t.Fatal("test needs a baseline whose balancer plans moves")
	}

	faulted := mk()
	faultSpy := &movesSpy{inner: sched.Distributed{}}
	faulted.Balancer = faultSpy
	plan := &Plan{Events: []Event{{Kind: BalanceAbort, Node: -1, Start: 0, End: 1 << 30}}}
	plan.Apply(&faulted)
	r := mustRun(t, faulted)
	// "If load balance algorithm is interrupted, no load balance will take
	// place at that region" — aborting every invocation means no planned
	// delegations at all, and the abort must never corrupt the task
	// assignment (validatePlan inside sim.Run would have errored the run).
	if faultSpy.planned != 0 {
		t.Fatalf("aborted balancing still planned %d delegations", faultSpy.planned)
	}
	if r.Moves != 0 {
		t.Fatalf("aborted balancing still moved %d tasks", r.Moves)
	}
	if !r.Conserved() {
		t.Fatal("balance-abort run breaks packet conservation")
	}
}

// A full-intensity generated plan — every fault kind at once — must still
// conserve packets exactly and keep the run deterministic.
func TestGeneratedPlanConservesAndDeterministic(t *testing.T) {
	cfg := baseConfig(t, 400, 8)
	plan, err := Generate(99, 1, GenConfig{Nodes: 10, Rounds: 400})
	if err != nil {
		t.Fatal(err)
	}
	faulted := cfg
	plan.Apply(&faulted)
	a := mustRun(t, faulted)
	b := mustRun(t, faulted)
	if !a.Conserved() {
		t.Fatalf("full-intensity plan breaks conservation: %+v", a)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("faulted run is nondeterministic")
	}
}

func TestPlanDescribeAndCounts(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: LinkDegrade, Node: -1, Start: 30, End: 40, SuccessRate: 0.5},
		{Kind: Crash, Node: 2, Start: 10, End: 20},
		{Kind: Crash, Node: 1, Start: 10, End: 15},
	}}
	want := []string{
		"crash node=1 rounds=[10,15)",
		"crash node=2 rounds=[10,20)",
		"link-degrade success=0.500 rounds=[30,40)",
	}
	got := p.Describe()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Describe() = %v, want %v", got, want)
	}
	counts := p.CountByKind()
	if counts[Crash] != 2 || counts[LinkDegrade] != 1 || counts[Blackout] != 0 {
		t.Fatalf("CountByKind() = %v", counts)
	}
	if p.Active(12) != 2 || p.Active(35) != 1 || p.Active(99) != 0 {
		t.Fatal("Active() miscounts")
	}
}
