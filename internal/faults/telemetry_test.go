package faults

import (
	"testing"

	"neofog/internal/mesh"
	"neofog/internal/sim"
	"neofog/internal/telemetry"
)

func TestInstrumentHooksCountsActivations(t *testing.T) {
	h := sim.FaultHooks{
		NodeDown: func(phys, round int) bool { return phys == 1 && round < 2 },
		Blackout: func(phys, round int) bool { return false },
		Link: func(round int) (mesh.LinkModel, bool) {
			return mesh.LinkModel{SuccessRate: 0.5}, round == 0
		},
		AbortBalance: func(round int) bool { return round == 1 },
	}
	tel := telemetry.New()
	ih := InstrumentHooks(h, tel)
	if ih.RFFailed != nil || ih.SensorStuck != nil {
		t.Fatal("nil hooks must stay nil after instrumentation")
	}
	for round := 0; round < 3; round++ {
		for phys := 0; phys < 2; phys++ {
			// The wrapped hooks must return exactly what the originals do.
			if got, want := ih.NodeDown(phys, round), h.NodeDown(phys, round); got != want {
				t.Fatalf("NodeDown(%d,%d) = %v, want %v", phys, round, got, want)
			}
			ih.Blackout(phys, round)
		}
		lm, ok := ih.Link(round)
		if wantLM, wantOK := h.Link(round); lm != wantLM || ok != wantOK {
			t.Fatalf("Link(%d) = %v,%v want %v,%v", round, lm, ok, wantLM, wantOK)
		}
		ih.AbortBalance(round)
	}
	for name, want := range map[string]int64{
		"faults.node_down":     2,
		"faults.blackout":      0,
		"faults.link_degraded": 1,
		"faults.balance_abort": 1,
	} {
		if got := tel.Counter(name); got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestInstrumentHooksNilRecorderIsIdentity(t *testing.T) {
	h := sim.FaultHooks{NodeDown: func(phys, round int) bool { return true }}
	ih := InstrumentHooks(h, nil)
	if ih.NodeDown == nil || !ih.NodeDown(0, 0) {
		t.Fatal("nil recorder must leave hooks unchanged")
	}
}
