package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTKnownSpectrum(t *testing.T) {
	// A pure cosine at bin 3 of a 64-point FFT puts energy only at bins 3
	// and 61.
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*3*float64(i)/float64(n)), 0)
	}
	cost, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Instructions <= 0 {
		t.Fatal("FFT must report a cost")
	}
	for k := range x {
		mag := cmplx.Abs(x[k])
		if k == 3 || k == 61 {
			if math.Abs(mag-32) > 1e-9 {
				t.Fatalf("bin %d magnitude %v, want 32", k, mag)
			}
		} else if mag > 1e-9 {
			t.Fatalf("bin %d should be empty, got %v", k, mag)
		}
	}
}

func TestFFTRejectsBadLength(t *testing.T) {
	for _, n := range []int{0, 3, 12, 100} {
		if _, err := FFT(make([]complex128, n)); err == nil {
			t.Errorf("FFT(%d) should fail", n)
		}
	}
}

// Property: IFFT(FFT(x)) == x for random signals.
func TestFFTRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (3 + rng.Intn(5)) // 8..128
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		if _, err := FFT(x); err != nil {
			return false
		}
		if _, err := IFFT(x); err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Parseval: energy in time domain equals energy in frequency domain / N.
func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 256
	x := make([]complex128, n)
	var tEnergy float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		tEnergy += real(x[i]) * real(x[i])
	}
	FFT(x)
	var fEnergy float64
	for _, v := range x {
		fEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(fEnergy/float64(n)-tEnergy) > 1e-6*tEnergy {
		t.Fatalf("Parseval violated: %v vs %v", fEnergy/float64(n), tEnergy)
	}
}

func TestFIRLowPass(t *testing.T) {
	taps := LowPassTaps(63, 0.05)
	// Unity DC gain by construction.
	var sum float64
	for _, v := range taps {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("DC gain = %v", sum)
	}
	// A low-frequency sine passes; a high-frequency sine is attenuated.
	n := 1024
	lo, hi := make([]float64, n), make([]float64, n)
	for i := range lo {
		lo[i] = math.Sin(2 * math.Pi * 0.01 * float64(i))
		hi[i] = math.Sin(2 * math.Pi * 0.4 * float64(i))
	}
	loOut, cost := FIRFilter(lo, taps)
	hiOut, _ := FIRFilter(hi, taps)
	if cost.Instructions != int64(n)*63*instPerMAC {
		t.Fatalf("FIR cost = %d", cost.Instructions)
	}
	if rms(loOut[200:]) < 0.6 {
		t.Fatalf("low frequency attenuated: rms=%v", rms(loOut[200:]))
	}
	if rms(hiOut[200:]) > 0.05 {
		t.Fatalf("high frequency passed: rms=%v", rms(hiOut[200:]))
	}
}

func rms(x []float64) float64 {
	var ss float64
	for _, v := range x {
		ss += v * v
	}
	return math.Sqrt(ss / float64(len(x)))
}

func TestARFitRecoversKnownProcess(t *testing.T) {
	// Generate an AR(2) process x[i] = 1.5x[i-1] - 0.7x[i-2] + e and check
	// the fit recovers the coefficients.
	rng := rand.New(rand.NewSource(9))
	n := 20000
	x := make([]float64, n)
	for i := 2; i < n; i++ {
		x[i] = 1.5*x[i-1] - 0.7*x[i-2] + rng.NormFloat64()
	}
	coeffs, cost, err := ARFit(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Instructions <= 0 {
		t.Fatal("ARFit must report a cost")
	}
	if math.Abs(coeffs[0]-1.5) > 0.05 || math.Abs(coeffs[1]+0.7) > 0.05 {
		t.Fatalf("coeffs = %v, want ≈[1.5 -0.7]", coeffs)
	}
}

func TestARPredictErrorDetectsDamage(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	healthy := make([]float64, 8000)
	for i := 2; i < len(healthy); i++ {
		healthy[i] = 1.5*healthy[i-1] - 0.7*healthy[i-2] + rng.NormFloat64()
	}
	coeffs, _, err := ARFit(healthy, 2)
	if err != nil {
		t.Fatal(err)
	}
	baseErr, _ := ARPredictError(healthy, coeffs)

	// A "damaged" structure has shifted dynamics.
	damaged := make([]float64, 8000)
	for i := 2; i < len(damaged); i++ {
		damaged[i] = 1.1*damaged[i-1] - 0.5*damaged[i-2] + rng.NormFloat64()
	}
	dmgErr, _ := ARPredictError(damaged, coeffs)
	if dmgErr <= baseErr*1.05 {
		t.Fatalf("damage indicator failed: healthy=%v damaged=%v", baseErr, dmgErr)
	}
}

func TestARFitErrors(t *testing.T) {
	if _, _, err := ARFit([]float64{1, 2}, 5); err == nil {
		t.Fatal("short input should fail")
	}
	if _, _, err := ARFit(make([]float64, 100), 2); err == nil {
		t.Fatal("zero signal should fail")
	}
}

func TestMatchPatternFindsTemplate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	template := make([]float64, 50)
	for i := range template {
		template[i] = math.Sin(float64(i) / 3)
	}
	x := make([]float64, 500)
	for i := range x {
		x[i] = rng.NormFloat64() * 0.1
	}
	const at = 217
	for i, v := range template {
		x[at+i] += v * 3
	}
	lag, corr, cost := MatchPattern(x, template)
	if lag != at {
		t.Fatalf("lag = %d, want %d", lag, at)
	}
	if corr < 0.9 {
		t.Fatalf("corr = %v, want ≥0.9", corr)
	}
	if cost.Instructions <= 0 {
		t.Fatal("MatchPattern must report a cost")
	}
}

func TestMatchPatternDegenerate(t *testing.T) {
	if _, _, c := MatchPattern(nil, []float64{1}); c.Instructions != 0 {
		t.Fatal("empty x should be free")
	}
	if _, _, c := MatchPattern([]float64{1, 2}, nil); c.Instructions != 0 {
		t.Fatal("empty template should be free")
	}
	// Constant signal: correlation undefined → zero, no NaN.
	lag, corr, _ := MatchPattern([]float64{5, 5, 5, 5}, []float64{5, 5})
	if math.IsNaN(corr) {
		t.Fatal("NaN correlation")
	}
	_ = lag
}

func TestReconstructVolumetric(t *testing.T) {
	points := [][3]float64{
		{0.1, 0.1, 10},
		{0.9, 0.9, 2},
	}
	grid, cost := ReconstructVolumetric(points, 8)
	if len(grid) != 64 {
		t.Fatalf("grid size %d", len(grid))
	}
	// Cell nearest (0.1,0.1) should be close to 10; nearest (0.9,0.9)
	// close to 2.
	if math.Abs(grid[0*8+0]-10) > 1 {
		t.Fatalf("grid[0,0] = %v", grid[0])
	}
	if math.Abs(grid[7*8+7]-2) > 1 {
		t.Fatalf("grid[7,7] = %v", grid[7*8+7])
	}
	if cost.Instructions <= 0 {
		t.Fatal("reconstruction must report cost")
	}
}

func TestByteConversions(t *testing.T) {
	raw := []byte{0x01, 0x00, 0xFF, 0xFF, 0x10, 0x27} // 1, -1, 10000
	f := Bytes16ToFloat(raw, 0, 2)
	if len(f) != 3 || f[0] != 1 || f[1] != -1 || f[2] != 10000 {
		t.Fatalf("Bytes16ToFloat = %v", f)
	}
	// Offset/stride extraction: second channel of 4-byte records.
	raw2 := []byte{1, 0, 2, 0, 3, 0, 4, 0}
	f2 := Bytes16ToFloat(raw2, 2, 4)
	if len(f2) != 2 || f2[0] != 2 || f2[1] != 4 {
		t.Fatalf("channel extraction = %v", f2)
	}
	b := BytesToFloat([]byte{0, 128, 255})
	if b[0] != 0 || b[1] != 128 || b[2] != 255 {
		t.Fatalf("BytesToFloat = %v", b)
	}
}

func TestCostAdd(t *testing.T) {
	if got := (Cost{3}).Add(Cost{4}); got.Instructions != 7 {
		t.Fatalf("Add = %+v", got)
	}
}
