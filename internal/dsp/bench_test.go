package dsp

import (
	"math/rand"
	"testing"
)

func randSignal(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func BenchmarkFFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	src := randSignal(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = complex(src[j], 0)
		}
		FFT(x)
	}
}

func BenchmarkFIR64Taps(b *testing.B) {
	x := randSignal(8192)
	taps := LowPassTaps(64, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FIRFilter(x, taps)
	}
}

func BenchmarkARFitOrder4(b *testing.B) {
	x := randSignal(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ARFit(x, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchPattern(b *testing.B) {
	x := randSignal(4096)
	template := randSignal(30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatchPattern(x, template)
	}
}

func BenchmarkVolumetric(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	points := make([][3]float64, 512)
	for i := range points {
		points[i] = [3]float64{rng.Float64(), rng.Float64(), rng.Float64() * 10}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReconstructVolumetric(points, 32)
	}
}
