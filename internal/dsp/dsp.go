// Package dsp implements the fog-computing kernels that NEOFog offloads
// from the cloud to the nodes (§3.1): FFT, FIR noise filtering,
// autoregressive model fitting for structural-health damage detection
// (Yao & Pakzad [84]), cross-correlation pattern matching for heartbeat
// monitoring, and point-sample volumetric reconstruction for the forest
// deployment (§5.2.1).
//
// Each kernel both computes a real result (so tests can check mathematical
// properties) and reports an instruction-count estimate for the 8051-class
// core, which the node model converts to energy. The per-operation costs
// assume soft floating point on an 8-bit MCU: ~45 instructions per
// multiply-accumulate, which is what makes local computation "dominate the
// computing time and energy rather than compression" (§3.1).
package dsp

import (
	"errors"
	"math"
	"math/cmplx"
)

// Instruction costs per primitive operation on the 8051-class core with
// software floating point.
const (
	instPerMAC       = 45 // multiply-accumulate
	instPerButterfly = 190
	instPerCompare   = 10
	instPerLoad      = 4
)

// Cost accumulates the instruction count of a kernel invocation.
type Cost struct{ Instructions int64 }

// Add merges two costs.
func (c Cost) Add(o Cost) Cost { return Cost{c.Instructions + o.Instructions} }

// FFT computes the in-place radix-2 decimation-in-time FFT of x (length
// must be a power of two) and reports its instruction cost.
func FFT(x []complex128) (Cost, error) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return Cost{}, errors.New("dsp: FFT length must be a power of two")
	}
	// Bit reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	butterflies := 0
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
				butterflies++
			}
		}
	}
	return Cost{int64(butterflies) * instPerButterfly}, nil
}

// IFFT computes the inverse FFT (same length restriction).
func IFFT(x []complex128) (Cost, error) {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	c, err := FFT(x)
	if err != nil {
		return c, err
	}
	invN := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * invN
	}
	c.Instructions += int64(len(x)) * instPerMAC
	return c, nil
}

// FIRFilter convolves x with taps (causal, zero-padded history) and reports
// the cost: one MAC per tap per sample — the "noise removal" stage of the
// bridge pipeline.
func FIRFilter(x, taps []float64) ([]float64, Cost) {
	out := make([]float64, len(x))
	for i := range x {
		var acc float64
		for k, t := range taps {
			if i-k >= 0 {
				acc += t * x[i-k]
			}
		}
		out[i] = acc
	}
	return out, Cost{int64(len(x)) * int64(len(taps)) * instPerMAC}
}

// LowPassTaps designs a windowed-sinc low-pass filter with n taps and the
// given normalised cutoff (0..0.5 of the sample rate).
func LowPassTaps(n int, cutoff float64) []float64 {
	if n < 1 || cutoff <= 0 || cutoff > 0.5 {
		panic("dsp: bad low-pass design")
	}
	taps := make([]float64, n)
	var sum float64
	for i := range taps {
		m := float64(i) - float64(n-1)/2
		var v float64
		if m == 0 {
			v = 2 * cutoff
		} else {
			v = math.Sin(2*math.Pi*cutoff*m) / (math.Pi * m)
		}
		// Hamming window.
		v *= 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
		taps[i] = v
		sum += v
	}
	for i := range taps {
		taps[i] /= sum // unity DC gain
	}
	return taps
}

// ARFit fits an autoregressive model of the given order to x by solving the
// Yule-Walker equations with Levinson-Durbin recursion. The coefficient
// vector is the damage-sensitive feature of the structural-health
// monitoring literature the paper builds on [84].
func ARFit(x []float64, order int) ([]float64, Cost, error) {
	if order < 1 || len(x) <= order {
		return nil, Cost{}, errors.New("dsp: AR order must be in [1, len(x))")
	}
	// Autocorrelation r[0..order].
	r := make([]float64, order+1)
	for lag := 0; lag <= order; lag++ {
		var acc float64
		for i := lag; i < len(x); i++ {
			acc += x[i] * x[i-lag]
		}
		r[lag] = acc / float64(len(x))
	}
	cost := Cost{int64(order+1) * int64(len(x)) * instPerMAC}

	if r[0] == 0 {
		return nil, cost, errors.New("dsp: zero-energy signal")
	}
	// Levinson-Durbin.
	a := make([]float64, order+1)
	e := r[0]
	for k := 1; k <= order; k++ {
		acc := r[k]
		for j := 1; j < k; j++ {
			acc -= a[j] * r[k-j]
		}
		refl := acc / e
		a[k] = refl
		for j := 1; j <= k/2; j++ {
			aj, akj := a[j], a[k-j]
			a[j] = aj - refl*akj
			if j != k-j {
				a[k-j] = akj - refl*aj
			}
		}
		e *= 1 - refl*refl
		if e <= 0 {
			return nil, cost, errors.New("dsp: Levinson-Durbin broke down")
		}
	}
	cost.Instructions += int64(order*order) * instPerMAC
	return a[1:], cost, nil
}

// ARPredictError reports the one-step prediction RMS error of AR
// coefficients on x — the damage indicator: a model fit on the healthy
// structure mispredicts once the structure changes.
func ARPredictError(x, coeffs []float64) (float64, Cost) {
	order := len(coeffs)
	if len(x) <= order {
		return 0, Cost{}
	}
	var ss float64
	for i := order; i < len(x); i++ {
		var pred float64
		for k, c := range coeffs {
			pred += c * x[i-1-k]
		}
		d := x[i] - pred
		ss += d * d
	}
	n := len(x) - order
	return math.Sqrt(ss / float64(n)), Cost{int64(n) * int64(order+2) * instPerMAC}
}

// MatchPattern slides template over x and returns the lag with the highest
// normalised cross-correlation and that correlation value — the heartbeat
// pattern-matching kernel.
func MatchPattern(x, template []float64) (bestLag int, bestCorr float64, cost Cost) {
	m := len(template)
	if m == 0 || len(x) < m {
		return 0, 0, Cost{}
	}
	var tMean float64
	for _, v := range template {
		tMean += v
	}
	tMean /= float64(m)
	var tVar float64
	tc := make([]float64, m)
	for i, v := range template {
		tc[i] = v - tMean
		tVar += tc[i] * tc[i]
	}

	bestCorr = math.Inf(-1)
	lags := len(x) - m + 1
	for lag := 0; lag < lags; lag++ {
		var xMean float64
		for i := 0; i < m; i++ {
			xMean += x[lag+i]
		}
		xMean /= float64(m)
		var num, xVar float64
		for i := 0; i < m; i++ {
			xc := x[lag+i] - xMean
			num += xc * tc[i]
			xVar += xc * xc
		}
		corr := 0.0
		if xVar > 0 && tVar > 0 {
			corr = num / math.Sqrt(xVar*tVar)
		}
		if corr > bestCorr {
			bestCorr, bestLag = corr, lag
		}
	}
	cost = Cost{int64(lags) * int64(3*m) * instPerMAC / 2}
	return bestLag, bestCorr, cost
}

// ReconstructVolumetric builds a coarse volumetric density map from point
// samples by inverse-distance-weighted splatting onto a grid — the
// reconstruction kernel of the forest monitoring scenario (§5.2.1).
// points are (x, y, value) triples in [0,1)²; the result is a side×side
// grid.
func ReconstructVolumetric(points [][3]float64, side int) ([]float64, Cost) {
	if side <= 0 {
		panic("dsp: non-positive grid side")
	}
	grid := make([]float64, side*side)
	weight := make([]float64, side*side)
	const radius = 2 // cells
	for _, p := range points {
		cx, cy := int(p[0]*float64(side)), int(p[1]*float64(side))
		for dy := -radius; dy <= radius; dy++ {
			for dx := -radius; dx <= radius; dx++ {
				gx, gy := cx+dx, cy+dy
				if gx < 0 || gy < 0 || gx >= side || gy >= side {
					continue
				}
				fx := (float64(gx)+0.5)/float64(side) - p[0]
				fy := (float64(gy)+0.5)/float64(side) - p[1]
				w := 1 / (fx*fx + fy*fy + 1e-6)
				grid[gy*side+gx] += w * p[2]
				weight[gy*side+gx] += w
			}
		}
	}
	for i := range grid {
		if weight[i] > 0 {
			grid[i] /= weight[i]
		}
	}
	splat := int64(len(points)) * (2*radius + 1) * (2*radius + 1)
	return grid, Cost{splat*instPerMAC*3 + int64(side*side)*instPerLoad}
}

// Bytes16ToFloat converts little-endian int16 records (one channel at the
// given offset and stride, both in bytes) into floats — the glue between
// NVBuffer contents and the kernels.
func Bytes16ToFloat(raw []byte, offset, stride int) []float64 {
	if stride <= 0 {
		panic("dsp: non-positive stride")
	}
	var out []float64
	for i := offset; i+1 < len(raw); i += stride {
		v := int16(uint16(raw[i]) | uint16(raw[i+1])<<8)
		out = append(out, float64(v))
	}
	return out
}

// BytesToFloat converts unsigned bytes (stride 1) into floats.
func BytesToFloat(raw []byte) []float64 {
	out := make([]float64, len(raw))
	for i, b := range raw {
		out[i] = float64(b)
	}
	return out
}
