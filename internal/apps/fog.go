package apps

import (
	"encoding/binary"
	"math"

	"neofog/internal/dsp"
)

// The fog pipelines below are the cloud-offloaded analytics of §3.1. Kernel
// sizes (filter lengths, window counts, AR orders, template lengths) are
// chosen so the measured instruction counts land near Table 2's buffered
// compute energies (see EXPERIMENTS.md for paper-vs-measured).

func putF32(dst []byte, v float64) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], math.Float32bits(float32(v)))
	return append(dst, b[:]...)
}

// bridgeFog is the bridge-health pipeline the paper spells out: combine the
// 3-direction acceleration into one cable-vertical vibration, remove noise,
// FFT, compute strength in three structure-specialised models (AR fits of
// different orders), compensate, and average (§3.1).
func bridgeFog(raw []byte) ([]byte, dsp.Cost) {
	var cost dsp.Cost

	// Channel extraction and 3-direction combination (vertical projection).
	ax := dsp.Bytes16ToFloat(raw, 0, 8)
	ay := dsp.Bytes16ToFloat(raw, 2, 8)
	az := dsp.Bytes16ToFloat(raw, 4, 8)
	n := len(ax)
	vertical := make([]float64, n)
	const cx, cy, cz = 0.23, 0.31, 0.92 // cable-vertical direction cosines
	for i := 0; i < n; i++ {
		vertical[i] = cx*ax[i] + cy*ay[i] + cz*az[i]
	}
	cost.Instructions += int64(n) * 3 * 45

	// Noise removal.
	filtered, c := dsp.FIRFilter(vertical, dsp.LowPassTaps(44, 0.12))
	cost = cost.Add(c)

	// Per-window FFT: dominant-mode frequency and amplitude.
	out := make([]byte, 0, 128)
	const win = 1024
	for w := 0; w+win <= len(filtered); w += win {
		buf := make([]complex128, win)
		for i := 0; i < win; i++ {
			buf[i] = complex(filtered[w+i], 0)
		}
		fc, err := dsp.FFT(buf)
		cost = cost.Add(fc)
		if err != nil {
			continue
		}
		peak, peakMag := 1, 0.0
		for k := 1; k < win/2; k++ {
			if m := real(buf[k])*real(buf[k]) + imag(buf[k])*imag(buf[k]); m > peakMag {
				peak, peakMag = k, m
			}
		}
		out = append(out, byte(peak), byte(peak>>8))
	}

	// Three structure-specialised strength models: AR fits of increasing
	// order; the prediction error is the strength/damage indicator.
	for _, order := range []int{2, 3, 4} {
		coeffs, c, err := dsp.ARFit(filtered, order)
		cost = cost.Add(c)
		if err != nil {
			out = putF32(out, math.NaN())
			continue
		}
		strength, pc := dsp.ARPredictError(filtered, coeffs)
		cost = cost.Add(pc)
		out = putF32(out, strength)
	}

	// Temperature/humidity compensation and averaging of the models.
	var avg float64
	for i := 0; i < n; i++ {
		avg += filtered[i] * 1.0003 // compensation gain
	}
	avg /= float64(n)
	cost.Instructions += int64(n) * 2 * 45
	out = putF32(out, avg)
	return out, cost
}

// uvFog smooths the UV series and fits a dose model: cumulative exposure
// plus an AR(4) trend (the "accurate personal ultraviolet dose estimation"
// of [37]).
func uvFog(raw []byte) ([]byte, dsp.Cost) {
	var cost dsp.Cost
	x := dsp.Bytes16ToFloat(raw, 0, 2)
	filtered, c := dsp.FIRFilter(x, dsp.LowPassTaps(23, 0.08))
	cost = cost.Add(c)

	var dose float64
	for _, v := range filtered {
		dose += v
	}
	cost.Instructions += int64(len(filtered)) * 45

	out := putF32(nil, dose)
	coeffs, c2, err := dsp.ARFit(filtered, 4)
	cost = cost.Add(c2)
	if err == nil {
		for _, v := range coeffs {
			out = putF32(out, v)
		}
	}
	return out, cost
}

// tempFog smooths the temperature series and extracts min/max/mean plus an
// AR(4) drift model.
func tempFog(raw []byte) ([]byte, dsp.Cost) {
	var cost dsp.Cost
	x := dsp.Bytes16ToFloat(raw, 0, 2)
	filtered, c := dsp.FIRFilter(x, dsp.LowPassTaps(14, 0.05))
	cost = cost.Add(c)

	lo, hi, mean := math.Inf(1), math.Inf(-1), 0.0
	for _, v := range filtered {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		mean += v
	}
	mean /= float64(len(filtered))
	cost.Instructions += int64(len(filtered)) * 30

	out := putF32(putF32(putF32(nil, lo), hi), mean)
	coeffs, c2, err := dsp.ARFit(filtered, 4)
	cost = cost.Add(c2)
	if err == nil {
		for _, v := range coeffs {
			out = putF32(out, v)
		}
	}
	return out, cost
}

// accelFog runs per-axis noise removal, modal FFT, and AR(2) features — the
// machine-health pipeline of [34, 83].
func accelFog(raw []byte) ([]byte, dsp.Cost) {
	var cost dsp.Cost
	out := make([]byte, 0, 64)
	taps := dsp.LowPassTaps(14, 0.15)
	for axis := 0; axis < 3; axis++ {
		x := dsp.Bytes16ToFloat(raw, 2*axis, 6)
		filtered, c := dsp.FIRFilter(x, taps)
		cost = cost.Add(c)

		// Two modal windows per axis.
		const win = 1024
		for w := 0; w < 2 && (w+1)*win <= len(filtered); w++ {
			buf := make([]complex128, win)
			for i := 0; i < win; i++ {
				buf[i] = complex(filtered[w*win+i], 0)
			}
			fc, err := dsp.FFT(buf)
			cost = cost.Add(fc)
			if err != nil {
				continue
			}
			peak, peakMag := 1, 0.0
			for k := 1; k < win/2; k++ {
				if m := real(buf[k])*real(buf[k]) + imag(buf[k])*imag(buf[k]); m > peakMag {
					peak, peakMag = k, m
				}
			}
			out = append(out, byte(peak), byte(peak>>8))
		}

		coeffs, c2, err := dsp.ARFit(filtered, 2)
		cost = cost.Add(c2)
		if err == nil {
			for _, v := range coeffs {
				out = putF32(out, v)
			}
		}
	}
	return out, cost
}

// patternFog matches a QRS template against the whole buffered ECG stream
// and reports beat statistics — the heartbeat signal pattern-matching
// workload.
func patternFog(raw []byte) ([]byte, dsp.Cost) {
	var cost dsp.Cost
	x := dsp.BytesToFloat(raw)

	// QRS template: half-sine spike over 30 samples, matching the
	// synthetic source's beat morphology.
	template := make([]float64, 30)
	for i := range template {
		template[i] = 128 + 100*math.Sin(float64(i)/10*math.Pi/3)
	}
	lag, corr, c := dsp.MatchPattern(x, template)
	cost = cost.Add(c)

	// Beat counting by threshold crossing.
	beats := 0
	above := false
	for _, v := range x {
		if v > 190 && !above {
			beats++
			above = true
		} else if v < 160 {
			above = false
		}
	}
	cost.Instructions += int64(len(x)) * 10

	out := putF32(putF32(nil, corr), float64(beats))
	out = append(out, byte(lag), byte(lag>>8), byte(lag>>16))
	return out, cost
}
