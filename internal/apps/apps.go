// Package apps defines the five energy-harvesting WSN applications the
// paper measures (Tables 1 and 2): bridge health monitoring, the wearable
// UV meter, temperature sensing, acceleration sensing, and heartbeat
// pattern matching.
//
// Each application supports the two strategies of §5.1:
//
//   - naive sensing-computing-transmission: sample one record, run a small
//     amount of local processing (the Inst. NO. column of Table 2), and
//     transmit the raw record;
//   - buffered sensing-buffering-computing-compression-transmission:
//     accumulate a 64 kB NVBuffer, run the full fog pipeline (the
//     cloud-offloaded kernels of §3.1), compress, and transmit the result.
//
// The naive costs reproduce Table 2 exactly from first principles; the
// buffered costs are measured by actually running the dsp kernels and the
// compressor on synthetic sensor streams.
package apps

import (
	"fmt"
	"math/rand"

	"neofog/internal/compress"
	"neofog/internal/cpu"
	"neofog/internal/dsp"
	"neofog/internal/rf"
	"neofog/internal/sensors"
	"neofog/internal/units"
)

// BufferSize is the NVBuffer capacity the deployed systems use (§5.1).
const BufferSize = 65536

// Profile is the Table 1 deployment metadata of an application.
type Profile struct {
	EnergySource string
	SensorsDesc  string
	Topology     string
	Transmitted  string
}

// App is one application workload.
type App struct {
	// Name matches Table 2's App column.
	Name string
	// Device is the sensing hardware cost model.
	Device sensors.Device
	// NewSource constructs the synthetic signal source.
	NewSource func() sensors.Source
	// NaiveInsts is the per-sample local processing of the naive strategy
	// (Table 2's Inst. NO. column).
	NaiveInsts int64
	// Stride and DeltaOrder are the compressor parameters matched to the
	// record layout.
	Stride, DeltaOrder int
	// Fog runs the cloud-offloaded analytics over a raw buffer, returning
	// a small analytics payload and the kernel cost.
	Fog func(raw []byte) ([]byte, dsp.Cost)
	// Table1 is the deployment metadata.
	Table1 Profile
}

// The five measured applications.
func BridgeHealth() App {
	return App{
		Name:       "Bridge Health",
		Device:     sensors.BridgeCable(),
		NewSource:  func() sensors.Source { return &sensors.BridgeSource{} },
		NaiveInsts: 545,
		Stride:     8, DeltaOrder: 1,
		Fog: bridgeFog,
		Table1: Profile{
			EnergySource: "Solar, Piezoelectric",
			SensorsDesc:  "Accelerometers, piezo-sensors",
			Topology:     "Zigbee Chain Mesh",
			Transmitted:  "Raw sampled data",
		},
	}
}

func UVMeter() App {
	return App{
		Name:       "UV Meter",
		Device:     sensors.UVSensor(),
		NewSource:  func() sensors.Source { return &sensors.UVSource{} },
		NaiveInsts: 460,
		Stride:     2, DeltaOrder: 1,
		Fog: uvFog,
		Table1: Profile{
			EnergySource: "Solar",
			SensorsDesc:  "UV sensor",
			Topology:     "Star",
			Transmitted:  "Raw data",
		},
	}
}

func WSNTemp() App {
	return App{
		Name:       "WSN-Temp.",
		Device:     sensors.TMP101(),
		NewSource:  func() sensors.Source { return &sensors.TempSource{} },
		NaiveInsts: 56,
		Stride:     2, DeltaOrder: 1,
		Fog: tempFog,
		Table1: Profile{
			EnergySource: "Solar",
			SensorsDesc:  "Multiple temperature sensors",
			Topology:     "Zigbee Chain Mesh, GPRS",
			Transmitted:  "Raw uncompressed data",
		},
	}
}

func WSNAccel() App {
	return App{
		Name:       "WSN-Accel.",
		Device:     sensors.LIS331DLH(),
		NewSource:  func() sensors.Source { return &sensors.AccelSource{} },
		NaiveInsts: 477,
		Stride:     6, DeltaOrder: 1,
		Fog: accelFog,
		Table1: Profile{
			EnergySource: "Piezoelectric, thermal, RF",
			SensorsDesc:  "3-axis accelerometer, vibration sensors, temperature",
			Topology:     "Star, bus or tree",
			Transmitted:  "Raw data",
		},
	}
}

func PatternMatching() App {
	return App{
		Name:       "Pattern Matching",
		Device:     sensors.ECG(),
		NewSource:  func() sensors.Source { return &sensors.ECGSource{} },
		NaiveInsts: 1670,
		Stride:     1, DeltaOrder: 1,
		Fog: patternFog,
		Table1: Profile{
			EnergySource: "RF Source, WiFi",
			SensorsDesc:  "Heartbeat / biosignal front end",
			Topology:     "Point-to-point backscatter",
			Transmitted:  "Raw signal samples",
		},
	}
}

// All returns the five applications in Table 2 order.
func All() []App {
	return []App{BridgeHealth(), UVMeter(), WSNTemp(), WSNAccel(), PatternMatching()}
}

// ByName looks an application up by its Table 2 name.
func ByName(name string) (App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("apps: unknown application %q", name)
}

// NaiveRound is the cost of one naive strategy round (one sample).
type NaiveRound struct {
	ComputeEnergy units.Energy
	TxEnergy      units.Energy
	ComputeTime   units.Duration
	TxBytes       int
}

// ComputeRatio is Table 2's "Compute ratio": NVP energy share of
// compute+transmit.
func (r NaiveRound) ComputeRatio() float64 {
	return float64(r.ComputeEnergy) / float64(r.ComputeEnergy+r.TxEnergy)
}

// Naive evaluates the naive strategy for one sample on the given core and
// radio. The TX energy is the on-air energy of the raw record — exactly
// what Table 2 reports.
func (a App) Naive(core cpu.Config, radio rf.Radio) NaiveRound {
	t, e := core.Exec(a.NaiveInsts)
	return NaiveRound{
		ComputeEnergy: e,
		ComputeTime:   t,
		TxEnergy:      radio.AirEnergy(a.Device.BytesPerSample),
		TxBytes:       a.Device.BytesPerSample,
	}
}

// BufferedResult is the outcome of one buffered strategy block.
type BufferedResult struct {
	ComputeEnergy units.Energy
	TxEnergy      units.Energy
	ComputeTime   units.Duration
	// RawBytes is the buffered input size; TxBytes the transmitted
	// (compressed + analytics) size.
	RawBytes, TxBytes int
	// FogInsts and CompressInsts split the computation.
	FogInsts, CompressInsts int64
	// CompressionRatio is compressed size / raw size.
	CompressionRatio float64
}

// ComputeRatio is Table 2's buffered "Compute ratio".
func (r BufferedResult) ComputeRatio() float64 {
	return float64(r.ComputeEnergy) / float64(r.ComputeEnergy+r.TxEnergy)
}

// Buffered evaluates one buffered-strategy block of n raw bytes: the fog
// pipeline runs over the block, the block is compressed, and compressed
// data plus analytics are transmitted. rng drives the synthetic signal.
func (a App) Buffered(core cpu.Config, radio rf.Radio, n int, rng *rand.Rand) BufferedResult {
	raw := sensors.Fill(a.NewSource(), n, rng)

	analytics, fogCost := a.Fog(raw)
	blob, cstats := compress.Compress(raw, a.Stride, a.DeltaOrder)

	totalInsts := fogCost.Instructions + cstats.Instructions
	t, e := core.Exec(totalInsts)
	txBytes := len(blob) + len(analytics)
	return BufferedResult{
		ComputeEnergy:    e,
		TxEnergy:         radio.AirEnergy(txBytes),
		ComputeTime:      t,
		RawBytes:         n,
		TxBytes:          txBytes,
		FogInsts:         fogCost.Instructions,
		CompressInsts:    cstats.Instructions,
		CompressionRatio: cstats.Ratio(),
	}
}

// EnergySaved evaluates Table 2's comparison column: the relative total
// energy of the buffered strategy versus running the naive strategy often
// enough to move the same n bytes (Equations 4–6; negative means the
// buffered strategy saves energy).
func (a App) EnergySaved(core cpu.Config, radio rf.Radio, n int, rng *rand.Rand) (float64, NaiveRound, BufferedResult) {
	naive := a.Naive(core, radio)
	buf := a.Buffered(core, radio, n, rng)
	rounds := float64(n) / float64(a.Device.BytesPerSample)
	eNaive := float64(naive.ComputeEnergy+naive.TxEnergy) * rounds
	eNew := float64(buf.ComputeEnergy + buf.TxEnergy)
	return (eNew - eNaive) / eNaive, naive, buf
}
