package apps

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"neofog/internal/cpu"
	"neofog/internal/rf"
	"neofog/internal/sensors"
	"neofog/internal/units"
)

// Table 2's naive columns, reproduced exactly.
func TestTable2NaiveExact(t *testing.T) {
	core := cpu.Default8051()
	radio := rf.ML7266()
	want := []struct {
		name      string
		insts     int64
		computeNJ float64
		txNJ      float64
		ratioPct  float64
	}{
		{"Bridge Health", 545, 1366.86, 22809.6, 5.65},
		{"UV Meter", 460, 1153.68, 5702.4, 16.8},
		{"WSN-Temp.", 56, 140.448, 5702.4, 2.4},
		{"WSN-Accel.", 477, 1196.316, 17107.2, 6.53},
		{"Pattern Matching", 1670, 4188.36, 2851.2, 59.5},
	}
	for i, a := range All() {
		w := want[i]
		if a.Name != w.name || a.NaiveInsts != w.insts {
			t.Fatalf("app %d: %s/%d, want %s/%d", i, a.Name, a.NaiveInsts, w.name, w.insts)
		}
		r := a.Naive(core, radio)
		if math.Abs(float64(r.ComputeEnergy)-w.computeNJ) > 1e-9 {
			t.Errorf("%s: compute %v nJ, want %v", a.Name, float64(r.ComputeEnergy), w.computeNJ)
		}
		if math.Abs(float64(r.TxEnergy)-w.txNJ) > 1e-9 {
			t.Errorf("%s: TX %v nJ, want %v", a.Name, float64(r.TxEnergy), w.txNJ)
		}
		if math.Abs(r.ComputeRatio()*100-w.ratioPct) > 0.1 {
			t.Errorf("%s: compute ratio %.2f%%, want %.2f%%", a.Name, r.ComputeRatio()*100, w.ratioPct)
		}
	}
}

// Table 2's buffered columns: our pipelines must land near the paper's
// measured energies (kernels are real, so we assert bands rather than exact
// values) and flip the compute ratio from communication-dominated to
// computation-dominated.
func TestTable2BufferedBands(t *testing.T) {
	core := cpu.Default8051()
	radio := rf.ML7266()
	want := []struct {
		name        string
		computeMJ   float64 // paper's buffered compute energy
		txMJ        float64 // paper's buffered TX energy
		minRatioPct float64
	}{
		{"Bridge Health", 81.7, 6.95, 78},
		{"UV Meter", 108.3, 6.8, 80},
		{"WSN-Temp.", 75, 6.99, 78},
		{"WSN-Accel.", 83.6, 6.59, 75},
		{"Pattern Matching", 345.1, 5.39, 92},
	}
	for i, a := range All() {
		w := want[i]
		rng := rand.New(rand.NewSource(42))
		r := a.Buffered(core, radio, BufferSize, rng)
		gotMJ := r.ComputeEnergy.Millijoules()
		if gotMJ < w.computeMJ*0.6 || gotMJ > w.computeMJ*1.4 {
			t.Errorf("%s: buffered compute %.1f mJ, want within ±40%% of %.1f",
				a.Name, gotMJ, w.computeMJ)
		}
		// Our delta+Huffman compressor reaches ~9-12%% of raw size where
		// the authors' bzip reached ~3.7%%, so buffered TX energy runs
		// ~2-3× the paper's value; see EXPERIMENTS.md. Bound the deviation.
		txMJ := r.TxEnergy.Millijoules()
		if txMJ > w.txMJ*4.5 || txMJ < w.txMJ*0.1 {
			t.Errorf("%s: buffered TX %.2f mJ, want within 4.5× of %.2f", a.Name, txMJ, w.txMJ)
		}
		if r.ComputeRatio()*100 < w.minRatioPct {
			t.Errorf("%s: buffered compute ratio %.1f%%, want ≥%.0f%%",
				a.Name, r.ComputeRatio()*100, w.minRatioPct)
		}
		if r.CompressionRatio > 0.145 || r.CompressionRatio <= 0 {
			t.Errorf("%s: compression ratio %.3f outside paper band", a.Name, r.CompressionRatio)
		}
		t.Logf("%s: compute %.1f mJ (paper %.1f), TX %.2f mJ (paper %.2f), ratio %.1f%%, compression %.2f%%",
			a.Name, gotMJ, w.computeMJ, txMJ, w.txMJ, r.ComputeRatio()*100, r.CompressionRatio*100)
	}
}

// Table 2's comparison column: the buffered strategy saves 24.1–57.1% of
// total energy; the band must reproduce (most saved for WSN-Temp, least for
// Pattern Matching).
func TestEnergySavedBand(t *testing.T) {
	core := cpu.Default8051()
	radio := rf.ML7266()
	saved := map[string]float64{}
	for _, a := range All() {
		rng := rand.New(rand.NewSource(7))
		s, _, _ := a.EnergySaved(core, radio, BufferSize, rng)
		saved[a.Name] = s
		if s >= -0.10 || s <= -0.75 {
			t.Errorf("%s: energy saved %.1f%%, want in (-75%%, -10%%)", a.Name, s*100)
		}
		t.Logf("%s: energy saved %.1f%% (paper band -24.1%%..-57.1%%)", a.Name, s*100)
	}
	// Orderings the paper reports: pattern matching saves the least
	// (its naive compute share is already 59.5%).
	for name, s := range saved {
		if name == "Pattern Matching" {
			continue
		}
		if s >= saved["Pattern Matching"] {
			t.Errorf("%s saved %.1f%% should exceed Pattern Matching's %.1f%% savings",
				name, s*100, saved["Pattern Matching"]*100)
		}
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("UV Meter")
	if err != nil || a.Name != "UV Meter" {
		t.Fatalf("ByName = %+v, %v", a, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestTable1Profiles(t *testing.T) {
	for _, a := range All() {
		p := a.Table1
		if p.EnergySource == "" || p.SensorsDesc == "" || p.Topology == "" || p.Transmitted == "" {
			t.Errorf("%s: incomplete Table 1 profile: %+v", a.Name, p)
		}
	}
	// Table 1 topology spot checks.
	if b := BridgeHealth(); b.Table1.Topology != "Zigbee Chain Mesh" {
		t.Errorf("bridge topology = %q", b.Table1.Topology)
	}
	if u := UVMeter(); u.Table1.Topology != "Star" {
		t.Errorf("uv topology = %q", u.Table1.Topology)
	}
}

func TestFogPipelinesProduceAnalytics(t *testing.T) {
	for _, a := range All() {
		rng := rand.New(rand.NewSource(3))
		r := a.Buffered(cpu.Default8051(), rf.ML7266(), 16384, rng)
		if r.FogInsts <= 0 || r.CompressInsts <= 0 {
			t.Errorf("%s: missing cost split: %+v", a.Name, r)
		}
		if r.TxBytes <= 0 || r.TxBytes >= r.RawBytes {
			t.Errorf("%s: TX %d bytes of %d raw — no reduction", a.Name, r.TxBytes, r.RawBytes)
		}
	}
}

func TestBufferedDeterminism(t *testing.T) {
	a := BridgeHealth()
	r1 := a.Buffered(cpu.Default8051(), rf.ML7266(), 8192, rand.New(rand.NewSource(5)))
	r2 := a.Buffered(cpu.Default8051(), rf.ML7266(), 8192, rand.New(rand.NewSource(5)))
	if r1 != r2 {
		t.Fatalf("buffered evaluation not deterministic:\n%+v\n%+v", r1, r2)
	}
}

// The heartbeat pipeline's beat counter must agree with the synthetic
// source's rate: 65536 samples at 250 Hz of signal time and 1.2 beats/s is
// ~315 beats.
func TestPatternFogBeatCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	raw := make([]byte, 0, 65536)
	src := &sensors.ECGSource{}
	for len(raw) < 65536 {
		raw = append(raw, src.Next(rng)...)
	}
	out, cost := PatternMatching().Fog(raw)
	if cost.Instructions <= 0 || len(out) < 8 {
		t.Fatalf("fog output too small: %d bytes, %d insts", len(out), cost.Instructions)
	}
	beats := math.Float32frombits(binary.LittleEndian.Uint32(out[4:8]))
	want := 65536.0 / 250.0 * 1.2
	if math.Abs(float64(beats)-want) > want*0.1 {
		t.Fatalf("beats = %v, want ≈%.0f", beats, want)
	}
}

// The bridge pipeline's analytics must be finite and structured: peak
// frequency bins for each window and three finite strength figures.
func TestBridgeFogAnalyticsSane(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	raw := sensors.Fill(&sensors.BridgeSource{}, 65536, rng)
	out, cost := BridgeHealth().Fog(raw)
	if cost.Instructions < 10_000_000 {
		t.Fatalf("bridge pipeline implausibly cheap: %d insts", cost.Instructions)
	}
	// 8 windows × 2-byte peak bins, then 3 strengths + 1 average (float32).
	if len(out) != 8*2+4*4 {
		t.Fatalf("analytics payload = %d bytes", len(out))
	}
	for i := 0; i < 3; i++ {
		s := math.Float32frombits(binary.LittleEndian.Uint32(out[16+4*i:]))
		if math.IsNaN(float64(s)) || math.IsInf(float64(s), 0) || s < 0 {
			t.Fatalf("strength %d = %v", i, s)
		}
	}
}

// Naive compute time must follow the instruction count at 12 µs per
// instruction for every app.
func TestNaiveTimes(t *testing.T) {
	core := cpu.Default8051()
	for _, a := range All() {
		r := a.Naive(core, rf.ML7266())
		want := time12us(a.NaiveInsts)
		if r.ComputeTime != want {
			t.Errorf("%s: compute time %v, want %v", a.Name, r.ComputeTime, want)
		}
	}
}

func time12us(insts int64) (d units.Duration) { return units.Duration(insts * 12) }
