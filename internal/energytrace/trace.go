// Package energytrace models the income power seen by an energy-harvesting
// node over time. The NEOFog paper evaluates on two kinds of synthetic
// traces, both derived from measured solar data (§5.2):
//
//   - independent traces (forest deployment): each node's trace is a random
//     concatenation of segments drawn from a pool of base traces, so
//     neighbouring nodes see effectively uncorrelated power;
//   - dependent traces (bridge deployment): all nodes share one base trace
//     and differ only by ~30% random per-node variance.
//
// This package provides a parametric solar-day irradiance model to generate
// the base traces, the two per-node synthesis recipes above, and simple
// constant/step traces for tests.
package energytrace

import (
	"fmt"
	"math"

	"neofog/internal/units"
)

// Trace is a power-income signal. Implementations must be pure functions of
// time so that simulations are reproducible.
type Trace interface {
	// PowerAt reports the instantaneous income power at time t. Times
	// outside the trace's duration report zero.
	PowerAt(t units.Duration) units.Power
	// Duration reports the length of the trace.
	Duration() units.Duration
}

// Integrate computes the energy delivered by tr between from and to by
// sampling at the given step. It is exact for traces that are piecewise
// constant at multiples of step (which all traces in this package are, when
// integrated at their native resolution).
func Integrate(tr Trace, from, to, step units.Duration) units.Energy {
	if step <= 0 {
		panic("energytrace: non-positive integration step")
	}
	if to < from {
		from, to = to, from
	}
	var total units.Energy
	for t := from; t < to; t += step {
		dt := step
		if t+dt > to {
			dt = to - t
		}
		total += tr.PowerAt(t).Over(dt)
	}
	return total
}

// Constant is a trace with fixed power for a fixed duration.
type Constant struct {
	P   units.Power
	Len units.Duration
}

// PowerAt implements Trace.
func (c Constant) PowerAt(t units.Duration) units.Power {
	if t < 0 || t >= c.Len {
		return 0
	}
	return c.P
}

// Duration implements Trace.
func (c Constant) Duration() units.Duration { return c.Len }

// Sampled is a piecewise-constant trace: Samples[i] holds for
// [i·Step, (i+1)·Step).
type Sampled struct {
	Step    units.Duration
	Samples []units.Power
}

// NewSampled allocates a Sampled trace of n samples at the given step.
func NewSampled(step units.Duration, n int) *Sampled {
	if step <= 0 {
		panic("energytrace: non-positive step")
	}
	return &Sampled{Step: step, Samples: make([]units.Power, n)}
}

// PowerAt implements Trace.
func (s *Sampled) PowerAt(t units.Duration) units.Power {
	if t < 0 {
		return 0
	}
	i := int(t / s.Step)
	if i >= len(s.Samples) {
		return 0
	}
	return s.Samples[i]
}

// Duration implements Trace.
func (s *Sampled) Duration() units.Duration {
	return s.Step * units.Duration(len(s.Samples))
}

// Mean reports the average power over the whole trace.
func (s *Sampled) Mean() units.Power {
	if len(s.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Samples {
		sum += float64(p)
	}
	return units.Power(sum / float64(len(s.Samples)))
}

// StdDev reports the standard deviation of power over the whole trace.
func (s *Sampled) StdDev() units.Power {
	n := len(s.Samples)
	if n == 0 {
		return 0
	}
	mean := float64(s.Mean())
	var ss float64
	for _, p := range s.Samples {
		d := float64(p) - mean
		ss += d * d
	}
	return units.Power(math.Sqrt(ss / float64(n)))
}

// Scale returns a copy of the trace with every sample multiplied by k.
func (s *Sampled) Scale(k float64) *Sampled {
	out := NewSampled(s.Step, len(s.Samples))
	for i, p := range s.Samples {
		out.Samples[i] = units.Power(float64(p) * k)
	}
	return out
}

// Slice returns the sub-trace covering samples [i, j).
func (s *Sampled) Slice(i, j int) *Sampled {
	if i < 0 || j > len(s.Samples) || i > j {
		panic(fmt.Sprintf("energytrace: slice [%d,%d) out of range (len %d)", i, j, len(s.Samples)))
	}
	out := NewSampled(s.Step, j-i)
	copy(out.Samples, s.Samples[i:j])
	return out
}

// Concat joins traces with identical steps into one Sampled trace.
func Concat(parts ...*Sampled) *Sampled {
	if len(parts) == 0 {
		panic("energytrace: Concat of nothing")
	}
	step := parts[0].Step
	n := 0
	for _, p := range parts {
		if p.Step != step {
			panic("energytrace: Concat with mismatched steps")
		}
		n += len(p.Samples)
	}
	out := NewSampled(step, 0)
	out.Samples = make([]units.Power, 0, n)
	for _, p := range parts {
		out.Samples = append(out.Samples, p.Samples...)
	}
	return out
}
