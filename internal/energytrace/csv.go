package energytrace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"neofog/internal/units"
)

// WriteCSV encodes a sampled trace as two-column CSV (time_us, power_mw)
// with a header row. The format round-trips through ReadCSV.
func WriteCSV(w io.Writer, tr *Sampled) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_us", "power_mw"}); err != nil {
		return err
	}
	for i, p := range tr.Samples {
		t := int64(tr.Step) * int64(i)
		rec := []string{
			strconv.FormatInt(t, 10),
			strconv.FormatFloat(float64(p), 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a trace written by WriteCSV. The sample step is inferred
// from the first two rows; a single-row trace is rejected because its step
// is ambiguous.
func ReadCSV(r io.Reader) (*Sampled, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("energytrace: reading CSV: %w", err)
	}
	if len(rows) < 3 {
		return nil, fmt.Errorf("energytrace: trace CSV needs a header and at least 2 samples, got %d rows", len(rows))
	}
	rows = rows[1:] // drop header
	t0, err := strconv.ParseInt(rows[0][0], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("energytrace: bad time %q: %w", rows[0][0], err)
	}
	t1, err := strconv.ParseInt(rows[1][0], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("energytrace: bad time %q: %w", rows[1][0], err)
	}
	step := units.Duration(t1 - t0)
	if step <= 0 {
		return nil, fmt.Errorf("energytrace: non-increasing timestamps (%d then %d)", t0, t1)
	}
	tr := NewSampled(step, len(rows))
	for i, row := range rows {
		wantT := t0 + int64(step)*int64(i)
		gotT, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("energytrace: bad time %q: %w", row[0], err)
		}
		if gotT != wantT {
			return nil, fmt.Errorf("energytrace: irregular sampling at row %d: got t=%d, want %d", i+2, gotT, wantT)
		}
		p, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("energytrace: bad power %q: %w", row[1], err)
		}
		if p < 0 {
			return nil, fmt.Errorf("energytrace: negative power %g at row %d", p, i+2)
		}
		tr.Samples[i] = units.Power(p)
	}
	return tr, nil
}
