package energytrace

import (
	"math"
	"math/rand"

	"neofog/internal/units"
)

// SolarConfig parameterises the synthetic solar-day irradiance model used to
// generate base traces. The model is a half-sine diurnal envelope (sunrise
// to sunset) modulated by two stochastic processes:
//
//   - a slow cloud process: a random-telegraph attenuation with exponential
//     dwell times, standing in for passing cloud cover;
//   - a fast shade process: per-sample multiplicative jitter, standing in
//     for leaf flicker (forest) or panel-angle vibration (bridge).
//
// The paper's deployment regimes map onto this model as presets below.
type SolarConfig struct {
	// Peak is the clear-sky panel output at solar noon.
	Peak units.Power
	// DayStart and DayEnd bound the sunlit portion of the trace.
	DayStart, DayEnd units.Duration
	// Step is the sample resolution of the generated trace.
	Step units.Duration
	// CloudAttenuation is the multiplicative factor applied while a cloud
	// is overhead (0..1; 1 disables clouds).
	CloudAttenuation float64
	// CloudMeanClear and CloudMeanCover are the mean dwell times of the
	// clear and covered states of the cloud telegraph process.
	CloudMeanClear, CloudMeanCover units.Duration
	// ShadeJitter is the per-sample relative jitter (standard deviation of
	// a multiplicative factor clamped to [0, 1+3σ]).
	ShadeJitter float64
	// Floor is a small baseline (diffuse light) added throughout daytime.
	Floor units.Power
}

// SunnyDay is a clear high-income day (Fig. 12's "high power" regime).
func SunnyDay() SolarConfig {
	return SolarConfig{
		Peak:             12 * units.Milliwatt,
		DayStart:         0,
		DayEnd:           5 * units.Hour,
		Step:             units.Second,
		CloudAttenuation: 0.75,
		CloudMeanClear:   20 * units.Minute,
		CloudMeanCover:   4 * units.Minute,
		ShadeJitter:      0.08,
		Floor:            0.3 * units.Milliwatt,
	}
}

// OvercastDay is a mostly-cloudy day: moderate income, strong variation.
func OvercastDay() SolarConfig {
	c := SunnyDay()
	c.Peak = 5 * units.Milliwatt
	c.CloudAttenuation = 0.35
	c.CloudMeanClear = 6 * units.Minute
	c.CloudMeanCover = 8 * units.Minute
	c.ShadeJitter = 0.15
	return c
}

// RainyDay is the Fig. 13 "very low power" regime: heavy overcast, little
// direct sun, the condition under which mountain-slide events occur.
func RainyDay() SolarConfig {
	c := SunnyDay()
	c.Peak = 1.6 * units.Milliwatt
	c.CloudAttenuation = 0.30
	c.CloudMeanClear = 2 * units.Minute
	c.CloudMeanCover = 15 * units.Minute
	c.ShadeJitter = 0.20
	c.Floor = 0.12 * units.Milliwatt
	return c
}

// Generate synthesises one base trace from the config using rng. The result
// is deterministic for a given rng state.
func (c SolarConfig) Generate(rng *rand.Rand) *Sampled {
	if c.Step <= 0 || c.DayEnd <= c.DayStart {
		panic("energytrace: invalid solar config")
	}
	n := int((c.DayEnd - c.DayStart) / c.Step)
	tr := NewSampled(c.Step, n)

	dayLen := float64(c.DayEnd - c.DayStart)
	covered := rng.Float64() < 0.5
	dwell := c.nextDwell(rng, covered)

	for i := 0; i < n; i++ {
		t := float64(i) * float64(c.Step)
		// Diurnal half-sine envelope.
		envelope := math.Sin(math.Pi * t / dayLen)
		p := float64(c.Peak) * envelope

		// Cloud telegraph process.
		if covered {
			p *= c.CloudAttenuation
		}
		dwell -= c.Step
		if dwell <= 0 {
			covered = !covered
			dwell = c.nextDwell(rng, covered)
		}

		// Fast shade jitter.
		if c.ShadeJitter > 0 {
			f := 1 + rng.NormFloat64()*c.ShadeJitter
			f = math.Max(0, math.Min(f, 1+3*c.ShadeJitter))
			p *= f
		}

		p += float64(c.Floor) * envelope
		if p < 0 {
			p = 0
		}
		tr.Samples[i] = units.Power(p)
	}
	return tr
}

func (c SolarConfig) nextDwell(rng *rand.Rand, covered bool) units.Duration {
	mean := c.CloudMeanClear
	if covered {
		mean = c.CloudMeanCover
	}
	if mean <= 0 {
		return c.DayEnd - c.DayStart // never toggles
	}
	return units.Duration(rng.ExpFloat64() * float64(mean))
}

// IndependentSet synthesises per-node traces using the forest recipe of
// §5.2.1: each node's trace is a concatenation of randomly ordered segments
// drawn from a pool of base traces, so the income of neighbouring nodes is
// effectively independent. segment is the shuffled-chunk length.
func IndependentSet(cfg SolarConfig, nodes int, segment units.Duration, rng *rand.Rand) []*Sampled {
	const poolSize = 8
	pool := make([]*Sampled, poolSize)
	for i := range pool {
		pool[i] = cfg.Generate(rng)
	}
	segSamples := int(segment / cfg.Step)
	if segSamples <= 0 {
		panic("energytrace: segment shorter than step")
	}
	total := len(pool[0].Samples)
	if segSamples > total {
		segSamples = total
	}
	// Segments start at aligned offsets; the last aligned start is clamped
	// so every drawn segment is full length.
	maxStart := (total - segSamples) / segSamples

	out := make([]*Sampled, nodes)
	for n := 0; n < nodes; n++ {
		parts := make([]*Sampled, 0, total/segSamples+1)
		have := 0
		for have < total {
			src := pool[rng.Intn(poolSize)]
			// Pick a random aligned segment from the source so that the
			// diurnal phase is scrambled between nodes.
			at := rng.Intn(maxStart+1) * segSamples
			parts = append(parts, src.Slice(at, at+segSamples))
			have += segSamples
		}
		tr := Concat(parts...)
		tr.Samples = tr.Samples[:total]
		out[n] = tr
	}
	return out
}

// DependentSet synthesises per-node traces using the bridge recipe of
// §5.2.2: every node shares one base trace; node i's trace is the base
// scaled by a fixed per-node factor plus per-sample noise, with total
// relative variance ~variance (the paper uses 30%).
func DependentSet(cfg SolarConfig, nodes int, variance float64, rng *rand.Rand) []*Sampled {
	base := cfg.Generate(rng)
	out := make([]*Sampled, nodes)
	for n := 0; n < nodes; n++ {
		// Split the variance between a static per-node gain (location,
		// panel angle) and dynamic per-sample noise.
		gain := 1 + rng.NormFloat64()*variance*0.8
		if gain < 0.1 {
			gain = 0.1
		}
		tr := NewSampled(base.Step, len(base.Samples))
		for i, p := range base.Samples {
			f := gain * (1 + rng.NormFloat64()*variance*0.25)
			if f < 0 {
				f = 0
			}
			tr.Samples[i] = units.Power(float64(p) * f)
		}
		out[n] = tr
	}
	return out
}
