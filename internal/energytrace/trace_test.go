package energytrace

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"neofog/internal/units"
)

func TestConstantTrace(t *testing.T) {
	c := Constant{P: 5, Len: units.Second}
	if c.PowerAt(0) != 5 || c.PowerAt(units.Second-1) != 5 {
		t.Fatal("constant trace wrong inside range")
	}
	if c.PowerAt(-1) != 0 || c.PowerAt(units.Second) != 0 {
		t.Fatal("constant trace should be zero outside range")
	}
	if got := Integrate(c, 0, units.Second, units.Millisecond); got != 5e6 {
		t.Fatalf("Integrate = %v, want 5mJ", got)
	}
}

func TestIntegratePartialStep(t *testing.T) {
	c := Constant{P: 2, Len: units.Second}
	// 1.5 ms at 1 ms steps: final partial step must not over-count.
	got := Integrate(c, 0, 1500, units.Millisecond)
	if got != 3000 {
		t.Fatalf("Integrate over 1.5ms = %v nJ, want 3000", got)
	}
	// Reversed bounds behave as swapped.
	if Integrate(c, 1500, 0, units.Millisecond) != got {
		t.Fatal("Integrate should normalise reversed bounds")
	}
}

func TestSampledTraceIndexing(t *testing.T) {
	tr := NewSampled(units.Millisecond, 3)
	tr.Samples[0], tr.Samples[1], tr.Samples[2] = 1, 2, 3
	cases := []struct {
		t units.Duration
		p units.Power
	}{
		{0, 1}, {999, 1}, {1000, 2}, {2999, 3}, {3000, 0}, {-1, 0},
	}
	for _, c := range cases {
		if got := tr.PowerAt(c.t); got != c.p {
			t.Errorf("PowerAt(%d) = %v, want %v", c.t, got, c.p)
		}
	}
	if tr.Duration() != 3*units.Millisecond {
		t.Fatalf("Duration = %v", tr.Duration())
	}
}

func TestSampledStats(t *testing.T) {
	tr := NewSampled(units.Second, 4)
	tr.Samples = []units.Power{2, 4, 4, 6}
	if tr.Mean() != 4 {
		t.Fatalf("Mean = %v, want 4", tr.Mean())
	}
	want := math.Sqrt(2) // population stddev of {2,4,4,6}
	if math.Abs(float64(tr.StdDev())-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", tr.StdDev(), want)
	}
}

func TestScaleAndSliceAndConcat(t *testing.T) {
	tr := NewSampled(units.Second, 4)
	tr.Samples = []units.Power{1, 2, 3, 4}
	s2 := tr.Scale(2)
	if s2.Samples[3] != 8 || tr.Samples[3] != 4 {
		t.Fatal("Scale must not mutate the original")
	}
	sl := tr.Slice(1, 3)
	if len(sl.Samples) != 2 || sl.Samples[0] != 2 || sl.Samples[1] != 3 {
		t.Fatalf("Slice = %v", sl.Samples)
	}
	cat := Concat(sl, sl)
	if len(cat.Samples) != 4 || cat.Samples[2] != 2 {
		t.Fatalf("Concat = %v", cat.Samples)
	}
}

func TestSolarGenerateShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := SunnyDay()
	tr := cfg.Generate(rng)
	if tr.Duration() != cfg.DayEnd-cfg.DayStart {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	// Non-negative everywhere and bounded by peak with jitter headroom.
	maxAllowed := float64(cfg.Peak+cfg.Floor) * (1 + 3*cfg.ShadeJitter)
	for i, p := range tr.Samples {
		if p < 0 {
			t.Fatalf("negative power at sample %d", i)
		}
		if float64(p) > maxAllowed {
			t.Fatalf("power %v exceeds bound %v at sample %d", p, maxAllowed, i)
		}
	}
	// Diurnal shape: middle third must out-power the first and last 5%.
	n := len(tr.Samples)
	edge := tr.Slice(0, n/20).Mean() + tr.Slice(n-n/20, n).Mean()
	mid := tr.Slice(n/3, 2*n/3).Mean()
	if mid <= edge {
		t.Fatalf("no diurnal envelope: mid %v <= edges %v", mid, edge)
	}
}

func TestSolarDeterminism(t *testing.T) {
	a := SunnyDay().Generate(rand.New(rand.NewSource(7)))
	b := SunnyDay().Generate(rand.New(rand.NewSource(7)))
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("same seed diverged at sample %d", i)
		}
	}
}

func TestRegimeOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sunny := SunnyDay().Generate(rng).Mean()
	overcast := OvercastDay().Generate(rng).Mean()
	rainy := RainyDay().Generate(rng).Mean()
	if !(sunny > overcast && overcast > rainy) {
		t.Fatalf("regime means out of order: sunny=%v overcast=%v rainy=%v", sunny, overcast, rainy)
	}
	if rainy <= 0 {
		t.Fatal("rainy day should still harvest something")
	}
}

// Independent traces should be far less correlated across nodes than
// dependent traces. This is the property §5.2 relies on.
func TestIndependentVsDependentCorrelation(t *testing.T) {
	cfg := SunnyDay()
	cfg.Step = 10 * units.Second // keep the test fast
	rng := rand.New(rand.NewSource(42))
	ind := IndependentSet(cfg, 2, 5*units.Minute, rng)
	dep := DependentSet(cfg, 2, 0.3, rng)

	corrInd := correlation(ind[0], ind[1])
	corrDep := correlation(dep[0], dep[1])
	if corrDep < 0.8 {
		t.Fatalf("dependent traces should be strongly correlated, got %v", corrDep)
	}
	if corrInd > corrDep-0.2 {
		t.Fatalf("independent traces too correlated: ind=%v dep=%v", corrInd, corrDep)
	}
}

func correlation(a, b *Sampled) float64 {
	n := len(a.Samples)
	ma, mb := float64(a.Mean()), float64(b.Mean())
	var sab, saa, sbb float64
	for i := 0; i < n; i++ {
		da := float64(a.Samples[i]) - ma
		db := float64(b.Samples[i]) - mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

func TestIndependentSetSizes(t *testing.T) {
	cfg := SunnyDay()
	cfg.Step = 10 * units.Second
	rng := rand.New(rand.NewSource(5))
	set := IndependentSet(cfg, 5, 7*units.Minute, rng) // segment not divisible
	want := int((cfg.DayEnd - cfg.DayStart) / cfg.Step)
	for i, tr := range set {
		if len(tr.Samples) != want {
			t.Fatalf("node %d trace has %d samples, want %d", i, len(tr.Samples), want)
		}
	}
}

func TestDependentSetNonNegative(t *testing.T) {
	cfg := RainyDay()
	cfg.Step = 10 * units.Second
	set := DependentSet(cfg, 20, 0.3, rand.New(rand.NewSource(9)))
	for _, tr := range set {
		for i, p := range tr.Samples {
			if p < 0 {
				t.Fatalf("negative power at sample %d", i)
			}
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := SunnyDay()
	cfg.Step = time10s()
	tr := cfg.Generate(rng)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Step != tr.Step || len(back.Samples) != len(tr.Samples) {
		t.Fatalf("shape mismatch: step %v/%v, n %d/%d", back.Step, tr.Step, len(back.Samples), len(tr.Samples))
	}
	for i := range tr.Samples {
		if back.Samples[i] != tr.Samples[i] {
			t.Fatalf("sample %d: %v != %v", i, back.Samples[i], tr.Samples[i])
		}
	}
}

func time10s() units.Duration { return 10 * units.Second }

func TestCSVRejectsMalformed(t *testing.T) {
	cases := []string{
		"time_us,power_mw\n0,1\n",                  // too short
		"time_us,power_mw\n0,1\n500,1\n1500,1\n",   // irregular step
		"time_us,power_mw\n0,1\n1000,-2\n2000,1\n", // negative power
		"time_us,power_mw\nx,1\ny,1\nz,1\n",        // junk
		"time_us,power_mw\n1000,1\n0,1\n",          // non-increasing
	}
	for i, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// Property: integrating any sampled trace at its native step equals the sum
// of sample powers times the step.
func TestIntegrateMatchesSum(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		tr := NewSampled(units.Millisecond, len(raw))
		var want float64
		for i, v := range raw {
			tr.Samples[i] = units.Power(v)
			want += float64(v) * 1000 // mW × 1000 µs
		}
		got := Integrate(tr, 0, tr.Duration(), tr.Step)
		return math.Abs(float64(got)-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
