package neofog

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestCanonicalDefaults pins the core cache-soundness property: a zero
// config and its fully spelled-out default form are the same content
// address.
func TestCanonicalDefaults(t *testing.T) {
	zero, err := ConfigHash(SimulationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := ConfigHash(SimulationConfig{
		System:              SystemNEOFog,
		Balancer:            BalanceDistributed,
		Application:         AppBridgeHealth,
		Nodes:               10,
		SlotSeconds:         12,
		Weather:             WeatherSunny,
		SolarPeakMilliwatts: 0.7,
		Multiplexing:        1,
		Seed:                1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if zero != explicit {
		t.Fatalf("zero config and explicit defaults hash differently:\n %s\n %s", zero, explicit)
	}

	// The per-system balancer default must match Simulate's resolution.
	vpDefault, err := ConfigHash(SimulationConfig{System: SystemVP})
	if err != nil {
		t.Fatal(err)
	}
	vpExplicit, err := ConfigHash(SimulationConfig{System: SystemVP, Balancer: BalanceNone})
	if err != nil {
		t.Fatal(err)
	}
	if vpDefault != vpExplicit {
		t.Fatal("nos-vp default balancer should canonicalize to none")
	}
	if vpDefault == zero {
		t.Fatal("different systems must hash differently")
	}
}

// TestCanonicalIgnoresObservers checks that attaching a journal or a
// telemetry collector — both proven non-perturbing — does not change the
// content address.
func TestCanonicalIgnoresObservers(t *testing.T) {
	plain, err := ConfigHash(SimulationConfig{Weather: WeatherRainy})
	if err != nil {
		t.Fatal(err)
	}
	observed := SimulationConfig{Weather: WeatherRainy}
	observed.Journal = &bytes.Buffer{}
	observed.Telemetry = NewTelemetry()
	h, err := ConfigHash(observed)
	if err != nil {
		t.Fatal(err)
	}
	if h != plain {
		t.Fatal("observer fields leaked into the content address")
	}
}

func TestCanonicalRejectsInvalid(t *testing.T) {
	for _, cfg := range []SimulationConfig{
		{System: "quantum"},
		{Balancer: "psychic"},
		{Application: "doom"},
		{Weather: "hail"},
		{Nodes: -1},
		{Multiplexing: -2},
		{SlotSeconds: -5},
		{Rounds: -10},
	} {
		if _, err := ConfigHash(cfg); err == nil {
			t.Errorf("expected error for %+v", cfg)
		}
	}
}

// FuzzCanonicalHash proves the hash that keys the service's result cache
// is stable under everything a client may legitimately vary without
// changing the simulation: spelling defaults explicitly vs leaving zero
// values, JSON field order, and attached observers. Any counterexample
// here would let one logical configuration occupy two cache entries (a
// harmless miss) or — far worse — two logical configurations collide on
// normalization into one.
func FuzzCanonicalHash(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), 0, 0, 0.0, 0.0, false, 0, int64(0), false, false, false, int64(0))
	f.Add(uint8(1), uint8(2), uint8(3), uint8(1), 10, 300, 12.0, 0.7, true, 2, int64(90), true, false, true, int64(7))
	f.Add(uint8(2), uint8(1), uint8(4), uint8(2), 5, 1500, 8.5, 1.2, false, 3, int64(512), false, true, false, int64(42))

	systems := []System{"", SystemVP, SystemNVP, SystemNEOFog}
	balancers := []Balancer{"", BalanceNone, BalanceTree, BalanceDistributed}
	applications := []Application{"", AppBridgeHealth, AppUVMeter, AppTemperature, AppAcceleration, AppHeartbeat}
	weathers := []Weather{"", WeatherSunny, WeatherOvercast, WeatherRainy}

	f.Fuzz(func(t *testing.T, sys, bal, app, wx uint8,
		nodes, rounds int, slot, peak float64, corr bool, mux int,
		fog int64, resumable, wakeup, recovery bool, seed int64) {
		cfg := SimulationConfig{
			System:              systems[int(sys)%len(systems)],
			Balancer:            balancers[int(bal)%len(balancers)],
			Application:         applications[int(app)%len(applications)],
			Nodes:               nodes,
			Rounds:              rounds,
			SlotSeconds:         slot,
			Weather:             weathers[int(wx)%len(weathers)],
			SolarPeakMilliwatts: peak,
			Correlated:          corr,
			Multiplexing:        mux,
			FogInstsPerByte:     fog,
			Resumable:           resumable,
			WakeupRadio:         wakeup,
			Recovery:            recovery,
			Seed:                seed,
		}
		h1, err := ConfigHash(cfg)
		if err != nil {
			// Invalid shapes and NaN/Inf floats are rejected, not hashed;
			// rejection must at least be deterministic.
			if _, err2 := ConfigHash(cfg); err2 == nil {
				t.Fatalf("nondeterministic rejection: %v then success", err)
			}
			return
		}

		// Determinism: hashing twice gives the same address.
		if h2, err := ConfigHash(cfg); err != nil || h2 != h1 {
			t.Fatalf("hash not deterministic: %s vs %s (%v)", h1, h2, err)
		}

		// Default-filling: normalization is idempotent and hash-preserving.
		norm, err := NormalizeConfig(cfg)
		if err != nil {
			t.Fatalf("hashable config failed to normalize: %v", err)
		}
		if hn, err := ConfigHash(norm); err != nil || hn != h1 {
			t.Fatalf("normalized config hashes differently: %s vs %s (%v)", h1, hn, err)
		}
		norm2, err := NormalizeConfig(norm)
		if err != nil || norm2 != norm {
			t.Fatalf("normalization not idempotent: %+v vs %+v (%v)", norm, norm2, err)
		}

		// Canonical bytes agree with the hash contract.
		b1, err := CanonicalConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bn, err := CanonicalConfig(norm)
		if err != nil || !bytes.Equal(b1, bn) {
			t.Fatalf("canonical bytes differ pre/post normalization:\n%s\n%s (%v)", b1, bn, err)
		}

		// JSON field order: round-trip the config through a generic map
		// (which re-marshals keys in sorted order, not struct order) and
		// confirm the content address is unchanged.
		enc, err := json.Marshal(struct {
			System              System
			Balancer            Balancer
			Application         Application
			Nodes               int
			Rounds              int
			SlotSeconds         float64
			Weather             Weather
			SolarPeakMilliwatts float64
			Correlated          bool
			Multiplexing        int
			FogInstsPerByte     int64
			Resumable           bool
			WakeupRadio         bool
			Recovery            bool
			Seed                int64
		}{cfg.System, cfg.Balancer, cfg.Application, cfg.Nodes, cfg.Rounds,
			cfg.SlotSeconds, cfg.Weather, cfg.SolarPeakMilliwatts, cfg.Correlated,
			cfg.Multiplexing, cfg.FogInstsPerByte, cfg.Resumable, cfg.WakeupRadio,
			cfg.Recovery, cfg.Seed})
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(enc, &m); err != nil {
			t.Fatal(err)
		}
		shuffled, err := json.Marshal(m) // map marshaling sorts keys
		if err != nil {
			t.Fatal(err)
		}
		var back SimulationConfig
		if err := json.Unmarshal(shuffled, &back); err != nil {
			t.Fatal(err)
		}
		if hb, err := ConfigHash(back); err != nil || hb != h1 {
			t.Fatalf("hash unstable across JSON field order: %s vs %s (%v)", h1, hb, err)
		}
	})
}
