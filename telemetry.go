package neofog

import (
	"io"

	"neofog/internal/telemetry"
)

// Telemetry collects a deployment's observability data: phase spans and
// instants per physical node (keyed to RTC slot time), counters, gauges
// and histograms, and a per-node energy/backlog timeline. Attach one to
// SimulationConfig.Telemetry or ExperimentOptions.Telemetry, run, then
// export.
//
// Telemetry observes, never perturbs: a run's results are bit-identical
// with or without a recorder attached, and the nil default costs nothing.
// Recording from the same seed twice yields byte-identical exports. A
// Telemetry must not be shared across concurrently running simulations;
// SimulateFleet and RunFleet handle that internally by giving each chain
// a private child recorder and merging in chain order.
type Telemetry struct {
	rec *telemetry.Recorder
}

// NewTelemetry builds an empty collector.
func NewTelemetry() *Telemetry { return &Telemetry{rec: telemetry.New()} }

// recorder unwraps to the internal recorder; nil-safe, so a nil *Telemetry
// behaves exactly like no telemetry at all.
func (t *Telemetry) recorder() *telemetry.Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// WriteTrace exports the recorded spans as Chrome trace-event JSON; the
// file loads directly in chrome://tracing or https://ui.perfetto.dev.
func (t *Telemetry) WriteTrace(w io.Writer) error {
	return t.recorder().WriteChromeTrace(w)
}

// WriteTimeline exports the per-node energy & backlog timeline as CSV
// (chain,node,round,time_s,stored_mj,backlog,awake).
func (t *Telemetry) WriteTimeline(w io.Writer) error {
	return t.recorder().WriteTimelineCSV(w)
}

// Summary renders the metrics registry as the repo's standard text table.
func (t *Telemetry) Summary() string {
	return t.recorder().SummaryTable().Format()
}

// Counter reads a named counter (0 if never written).
func (t *Telemetry) Counter(name string) int64 {
	return t.recorder().Counter(name)
}
