package neofog

import (
	"io"

	"neofog/internal/telemetry"
)

// Telemetry collects a deployment's observability data: phase spans and
// instants per physical node (keyed to RTC slot time), counters, gauges
// and histograms, and a per-node energy/backlog timeline. Attach one to
// SimulationConfig.Telemetry or ExperimentOptions.Telemetry, run, then
// export.
//
// Telemetry observes, never perturbs: a run's results are bit-identical
// with or without a recorder attached, and the nil default costs nothing.
// Recording from the same seed twice yields byte-identical exports. A
// Telemetry must not be shared across concurrently running simulations;
// SimulateFleet and RunFleet handle that internally by giving each chain
// a private child recorder and merging in chain order.
type Telemetry struct {
	rec *telemetry.Recorder
}

// NewTelemetry builds an empty collector.
func NewTelemetry() *Telemetry { return &Telemetry{rec: telemetry.New()} }

// TelemetryStreamer receives telemetry records the moment they are
// recorded, in recording order — the live counterpart of the batch
// exports. Callbacks run on the simulating goroutine: implementations
// must be fast and do their own synchronization if they fan records out
// to other goroutines. Streaming observes without perturbing; results
// and the collector's own contents are identical with or without it.
type TelemetryStreamer interface {
	// TelemetryEvent reports one phase span or instant. chain and track
	// locate the lane (track is the physical node index, or one past the
	// last node for the balancer lane), phase is the phase name
	// ("harvest", "wake", ..., see DESIGN.md), instant distinguishes
	// point events from spans, and times are simulated RTC seconds.
	TelemetryEvent(chain, track int, phase string, instant bool, startSeconds, durSeconds, value float64)
	// TelemetrySample reports one per-node timeline point: stored energy
	// (millijoules) and slot backlog at the end of a round.
	TelemetrySample(chain, node, round int, timeSeconds, storedMillijoules float64, backlog int, awake bool)
}

// NewStreamingTelemetry builds a collector that additionally forwards
// every span, instant and timeline sample to s as it is recorded. The
// simulation-as-a-service daemon uses this for live SSE progress.
func NewStreamingTelemetry(s TelemetryStreamer) *Telemetry {
	t := NewTelemetry()
	t.rec.SetSink(streamAdapter{s})
	return t
}

// streamAdapter converts internal telemetry records to the basic-typed
// TelemetryStreamer callbacks, keeping internal types out of the public
// API surface.
type streamAdapter struct{ s TelemetryStreamer }

func (a streamAdapter) OnEvent(e telemetry.Event) {
	a.s.TelemetryEvent(e.Chain, e.Track, e.Phase.String(), e.Kind == telemetry.KindInstant,
		e.Start.Seconds(), e.Dur.Seconds(), e.Value)
}

func (a streamAdapter) OnSample(s telemetry.Sample) {
	a.s.TelemetrySample(s.Chain, s.Node, s.Round, s.Time.Seconds(),
		s.Stored.Millijoules(), s.Backlog, s.Awake)
}

// recorder unwraps to the internal recorder; nil-safe, so a nil *Telemetry
// behaves exactly like no telemetry at all.
func (t *Telemetry) recorder() *telemetry.Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// WriteTrace exports the recorded spans as Chrome trace-event JSON; the
// file loads directly in chrome://tracing or https://ui.perfetto.dev.
func (t *Telemetry) WriteTrace(w io.Writer) error {
	return t.recorder().WriteChromeTrace(w)
}

// WriteTimeline exports the per-node energy & backlog timeline as CSV
// (chain,node,round,time_s,stored_mj,backlog,awake).
func (t *Telemetry) WriteTimeline(w io.Writer) error {
	return t.recorder().WriteTimelineCSV(w)
}

// Summary renders the metrics registry as the repo's standard text table.
func (t *Telemetry) Summary() string {
	return t.recorder().SummaryTable().Format()
}

// Counter reads a named counter (0 if never written).
func (t *Telemetry) Counter(name string) int64 {
	return t.recorder().Counter(name)
}
