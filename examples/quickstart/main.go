// Quickstart: simulate a 10-node NEOFog chain for 100 RTC slots (20
// minutes of deployment time) and print what the network accomplished.
package main

import (
	"fmt"
	"log"

	"neofog"
)

func main() {
	result, err := neofog.Simulate(neofog.SimulationConfig{
		System:      neofog.SystemNEOFog,
		Application: neofog.AppBridgeHealth,
		Nodes:       10,
		Rounds:      100,
		Weather:     neofog.WeatherSunny,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("NEOFog quickstart — 10 NV-motes, 20 minutes of daylight")
	fmt.Printf("  RTC slots:        %d (ideal packets %d)\n", result.Rounds, result.IdealPackets)
	fmt.Printf("  wakeups:          %d\n", result.Wakeups)
	fmt.Printf("  fog processed:    %d packets\n", result.FogProcessed)
	fmt.Printf("  cloud processed:  %d packets\n", result.CloudProcessed)
	fmt.Printf("  dropped:          %d packets\n", result.Dropped)
	fmt.Printf("  LB delegations:   %d\n", result.Moves)

	// The same deployment on the traditional volatile-processor stack.
	vp, err := neofog.Simulate(neofog.SimulationConfig{
		System:      neofog.SystemVP,
		Application: neofog.AppBridgeHealth,
		Nodes:       10,
		Rounds:      100,
		Weather:     neofog.WeatherSunny,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFor comparison, a NOS-VP network processed %d packets (all raw to the cloud).\n",
		vp.TotalProcessed())
	if vp.TotalProcessed() > 0 {
		fmt.Printf("NEOFog advantage: %.1f×\n",
			float64(result.TotalProcessed())/float64(vp.TotalProcessed()))
	}
}
