// Intermittent computing demo: the property that makes NV-motes possible.
//
// An 8051-class program (the paper's node simulator core) runs under a
// hostile power supply that dies every few dozen machine cycles. The NVP
// checkpoints its architectural state into nonvolatile flip-flops at each
// failure and resumes on recovery; the volatile processor restarts from
// reset and loses everything. Same silicon, same program, same power —
// only nonvolatility separates completion from starvation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"neofog/internal/isa"
)

const program = `
        MOV DPTR,#0
        MOV R2,#64      ; sum 64 sensor bytes from NV memory
        CLR A
        MOV R3,A
loop:   MOVX A,@DPTR
        ADD A,R3
        MOV R3,A
        INC DPTR
        DJNZ R2,loop
        MOV DPTR,#0x100
        MOV A,R3
        MOVX @DPTR,A    ; result into NV memory
        HALT
`

func newCore(data []byte) *isa.Core {
	c, err := isa.New(isa.MustAssemble(program))
	if err != nil {
		log.Fatal(err)
	}
	copy(c.XRAM, data)
	return c
}

func main() {
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, 64)
	var want byte
	for i := range data {
		data[i] = byte(rng.Intn(256))
		want += data[i]
	}

	// Reference: uninterrupted execution.
	golden := newCore(data)
	golden.Run(1_000_000)
	fmt.Printf("uninterrupted run: result=%d in %d machine cycles\n",
		golden.XRAM[0x100], golden.Cycles)
	fmt.Printf("expected checksum: %d\n\n", want)

	// Hostile supply: power bursts of 5–25 machine cycles.
	var bursts []uint64
	for total := uint64(0); total < 4*golden.Cycles; {
		b := uint64(rng.Intn(21) + 5)
		bursts = append(bursts, b)
		total += b
	}

	// NVP: checkpoint at every failure, restore at every recovery.
	nvp := newCore(data)
	done, failures, err := nvp.RunIntermittent(bursts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NVP under %d power failures: completed=%v result=%d (cycles %d — identical work)\n",
		failures, done, nvp.XRAM[0x100], nvp.Cycles)

	// VP: every failure wipes the volatile state.
	vp := newCore(data)
	restarts := 0
	for _, b := range bursts {
		vp.Run(b)
		if vp.Halted {
			break
		}
		vp.PowerCycle()
		restarts++
	}
	fmt.Printf("VP  under the same supply: completed=%v after %d futile restarts\n",
		vp.Halted, restarts)
}
