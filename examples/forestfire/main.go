// Forest fire monitoring: the §5.2.1 deployment. Nodes under a moving
// canopy see effectively independent power income, which is the regime
// where the distributed load balancer earns its keep — energy-rich nodes
// in sun gaps process the samples of shaded neighbours.
//
// The example sweeps the three weather regimes and prints how much of the
// network's sensing each system stack turns into fog-processed data.
package main

import (
	"fmt"
	"log"

	"neofog"
)

func main() {
	fmt.Println("Forest fire monitor — 10 nodes under canopy, independent power traces")
	fmt.Println()

	weathers := []neofog.Weather{neofog.WeatherSunny, neofog.WeatherOvercast, neofog.WeatherRainy}
	systems := []struct {
		name string
		sys  neofog.System
		bal  neofog.Balancer
	}{
		{"NOS-VP", neofog.SystemVP, neofog.BalanceNone},
		{"NOS-NVP, no LB", neofog.SystemNVP, neofog.BalanceNone},
		{"NOS-NVP, tree LB", neofog.SystemNVP, neofog.BalanceTree},
		{"NOS-NVP, distributed LB", neofog.SystemNVP, neofog.BalanceDistributed},
		{"FIOS NEOFog (full)", neofog.SystemNEOFog, neofog.BalanceDistributed},
	}

	fmt.Printf("%-26s", "system")
	for _, w := range weathers {
		fmt.Printf("  %-14s", w)
	}
	fmt.Println()
	for _, s := range systems {
		fmt.Printf("%-26s", s.name)
		for _, w := range weathers {
			res, err := neofog.Simulate(neofog.SimulationConfig{
				System:      s.sys,
				Balancer:    s.bal,
				Application: neofog.AppBridgeHealth,
				Nodes:       10,
				Weather:     w,
				Seed:        11,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %5d (%4.1f%%)", res.TotalProcessed(),
				100*float64(res.TotalProcessed())/float64(res.IdealPackets))
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Each cell: packets processed (share of the 15000-packet ideal).")
	fmt.Println("The NVP rows isolate the load balancer (its effect is small when")
	fmt.Println("income is spatially uniform — see the Fig. 9 experiment for the")
	fmt.Println("shaded-deployment case); the full NEOFog stack adds the FIOS")
	fmt.Println("front end on top, which dominates the Fig. 10 gains.")
}
