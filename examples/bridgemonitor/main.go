// Bridge health monitoring: the paper's running example (§3.1). Cable
// nodes sample 3-axis acceleration plus strain, and NEOFog moves the
// structural-health pipeline — vertical-vibration projection, noise
// removal, FFT, three AR strength models — from the cloud into the fog.
//
// This example compares the three system stacks on correlated (bridge-
// style) power traces across a 5-hour day, then profiles the single-node
// energy story that makes local processing worthwhile.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"neofog"
	"neofog/internal/apps"
	"neofog/internal/cpu"
	"neofog/internal/rf"
)

func main() {
	fmt.Println("Bridge health monitor — 10 cable nodes, correlated solar traces, 5 h")
	fmt.Println()

	type row struct {
		name   string
		system neofog.System
	}
	rows := []row{
		{"NOS-VP (raw to cloud)", neofog.SystemVP},
		{"NOS-NVP (baseline tree LB)", neofog.SystemNVP},
		{"FIOS NEOFog (distributed LB)", neofog.SystemNEOFog},
	}
	var totals []int
	for _, r := range rows {
		res, err := neofog.Simulate(neofog.SimulationConfig{
			System:      r.system,
			Application: neofog.AppBridgeHealth,
			Nodes:       10,
			Weather:     neofog.WeatherSunny,
			Correlated:  true,
			Seed:        7,
		})
		if err != nil {
			log.Fatal(err)
		}
		totals = append(totals, res.TotalProcessed())
		fmt.Printf("%-30s total=%5d  fog=%5d  cloud=%4d  dropped=%5d  (of %d ideal)\n",
			r.name, res.TotalProcessed(), res.FogProcessed, res.CloudProcessed,
			res.Dropped, res.IdealPackets)
	}
	fmt.Printf("\nNEOFog vs VP: %.1f×;  NEOFog vs baseline NVP: %.2f×\n\n",
		float64(totals[2])/float64(totals[0]), float64(totals[2])/float64(totals[1]))

	// Why in-fog processing wins at the node level: Table 2's bridge row.
	app := apps.BridgeHealth()
	saved, naive, buf := app.EnergySaved(cpu.Default8051(), rf.ML7266(), apps.BufferSize,
		rand.New(rand.NewSource(7)))
	fmt.Println("Single cable node, per 64 kB of samples:")
	fmt.Printf("  naive (raw per sample):  compute %v + TX %v per 8-byte sample\n",
		naive.ComputeEnergy, naive.TxEnergy)
	fmt.Printf("  buffered (process+compress locally): compute %v, TX %v (%d bytes)\n",
		buf.ComputeEnergy, buf.TxEnergy, buf.TxBytes)
	fmt.Printf("  compression ratio %.1f%%, energy saved %.1f%%\n",
		buf.CompressionRatio*100, -saved*100)
}
