// Mountain-slide monitoring: the §5.3 NVD4Q scenario. Solar nodes are
// scattered by aerial dispersion; slides happen during heavy rain, when
// income is at its worst. Naively adding nodes would inflate the Zigbee
// hop count (Fig. 7), so NEOFog instead clones network identities: extra
// physical nodes join an existing node's clone set, wake in round-robin
// phase slots, and each accumulates energy k× longer.
//
// The example sweeps the multiplexing factor on a rainy day and shows the
// QoS lift saturating around 3× — the paper's Fig. 13.
package main

import (
	"fmt"
	"log"

	"neofog"
)

func main() {
	fmt.Println("Mountain-slide monitor — rainy day, 10 logical nodes, NVD4Q multiplexing")
	fmt.Println()

	cfg := neofog.SimulationConfig{
		System:          neofog.SystemNEOFog,
		Application:     neofog.AppAcceleration,
		Nodes:           10,
		Weather:         neofog.WeatherRainy,
		Correlated:      true,
		FogInstsPerByte: 800, // the lighter slide-detection kernel
		Seed:            3,
	}

	// Reference: the traditional stack at baseline density.
	vpCfg := cfg
	vpCfg.System = neofog.SystemVP
	vp, err := neofog.Simulate(vpCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s  physical=%2d  fog=%5d\n", "VP w/o LB", 10, vp.FogProcessed)

	var base int
	for mux := 1; mux <= 5; mux++ {
		c := cfg
		c.Multiplexing = mux
		res, err := neofog.Simulate(c)
		if err != nil {
			log.Fatal(err)
		}
		if mux == 1 {
			base = res.FogProcessed
		}
		fmt.Printf("NEOFog %d00%%      physical=%2d  fog=%5d  (%.2f× of 100%%)\n",
			mux, 10*mux, res.FogProcessed, float64(res.FogProcessed)/float64(base))
	}

	fmt.Println()
	fmt.Println("Physical clones share one NVRF-cloned network identity, so the")
	fmt.Println("(virtual) topology — and the hop count — never changes. Gains")
	fmt.Println("saturate once the sampling ceiling is reached, near 3×.")
}
