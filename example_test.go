package neofog_test

import (
	"fmt"

	"neofog"
)

// ExampleSimulate runs a small NEOFog deployment and prints its outcome.
func ExampleSimulate() {
	res, err := neofog.Simulate(neofog.SimulationConfig{
		Nodes:  5,
		Rounds: 50,
		Seed:   42,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("ideal packets:", res.IdealPackets)
	fmt.Println("all processed in fog or cloud:",
		res.TotalProcessed() == res.FogProcessed+res.CloudProcessed)
	// Output:
	// ideal packets: 250
	// all processed in fog or cloud: true
}

// ExampleRunExperiment regenerates a paper artifact.
func ExampleRunExperiment() {
	out, err := neofog.RunExperiment("fig7", neofog.ExperimentOptions{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(out) > 0)
	// Output:
	// true
}

// ExampleSimulateFleet aggregates several independent chains.
func ExampleSimulateFleet() {
	fleet, err := neofog.SimulateFleet(neofog.SimulationConfig{
		Nodes:  4,
		Rounds: 30,
		Seed:   7,
	}, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("chains:", len(fleet.PerChain))
	fmt.Println("total nodes:", fleet.Aggregate.Nodes)
	// Output:
	// chains: 3
	// total nodes: 12
}
