// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment harness
// end-to-end (simulation-backed figures use shortened runs; the full-length
// versions are exercised by `neofog-sim -exp all` and the test suite).
// Component-level and ablation benchmarks live in the internal packages.
package neofog_test

import (
	"testing"

	"neofog"
	"neofog/internal/experiments"
)

func benchExperiment(b *testing.B, id string, rounds int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := neofog.RunExperiment(id, neofog.ExperimentOptions{Seed: 1, Rounds: rounds})
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "table1", 0) }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "table2", 0) }
func BenchmarkFig4(b *testing.B)     { benchExperiment(b, "fig4", 0) }
func BenchmarkFig6(b *testing.B)     { benchExperiment(b, "fig6", 0) }
func BenchmarkFig7(b *testing.B)     { benchExperiment(b, "fig7", 0) }
func BenchmarkFig9(b *testing.B)     { benchExperiment(b, "fig9", 300) }
func BenchmarkFig10(b *testing.B)    { benchExperiment(b, "fig10", 300) }
func BenchmarkFig11(b *testing.B)    { benchExperiment(b, "fig11", 300) }
func BenchmarkFig12(b *testing.B)    { benchExperiment(b, "fig12", 300) }
func BenchmarkFig13(b *testing.B)    { benchExperiment(b, "fig13", 300) }
func BenchmarkHeadline(b *testing.B) { benchExperiment(b, "headline", 300) }

// BenchmarkSimulateNEOFog measures the system simulator's throughput on
// the standard 10-node, 5-hour deployment.
func BenchmarkSimulateNEOFog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := neofog.Simulate(neofog.SimulationConfig{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalProcessed() == 0 {
			b.Fatal("degenerate run")
		}
	}
}

// BenchmarkSimulateLargeFleet runs the 100-node inter-chain scale the
// paper's simulator targets (reduced rounds to keep the benchmark honest
// but bounded).
func BenchmarkSimulateLargeFleet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := neofog.Simulate(neofog.SimulationConfig{
			Nodes:  100,
			Rounds: 300,
			Seed:   int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkFigPacketsFull is the full-length Fig. 10 regeneration (5
// profiles × 3 systems × 1500 rounds), for tracking the cost of the
// heaviest published artifact.
func BenchmarkFigPacketsFull(b *testing.B) {
	if testing.Short() {
		b.Skip("full-length")
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig10Independent(experiments.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
