// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus simulator-throughput and telemetry-overhead cases.
// Every Benchmark* here delegates to the registry in internal/bench, so
// `go test -bench` and the cmd/neofog-bench regression harness measure
// exactly the same code; internal/bench's coverage test enforces that the
// two lists never drift apart. Component-level and ablation benchmarks
// live in the internal packages.
package neofog_test

import (
	"testing"

	"neofog/internal/bench"
)

func runCase(b *testing.B, name string) {
	b.Helper()
	c, ok := bench.Find(name)
	if !ok {
		b.Fatalf("no bench case %q registered in internal/bench", name)
	}
	c.F(b)
}

func BenchmarkTable1(b *testing.B)   { runCase(b, "Table1") }
func BenchmarkTable2(b *testing.B)   { runCase(b, "Table2") }
func BenchmarkFig4(b *testing.B)     { runCase(b, "Fig4") }
func BenchmarkFig6(b *testing.B)     { runCase(b, "Fig6") }
func BenchmarkFig7(b *testing.B)     { runCase(b, "Fig7") }
func BenchmarkFig9(b *testing.B)     { runCase(b, "Fig9") }
func BenchmarkFig10(b *testing.B)    { runCase(b, "Fig10") }
func BenchmarkFig11(b *testing.B)    { runCase(b, "Fig11") }
func BenchmarkFig12(b *testing.B)    { runCase(b, "Fig12") }
func BenchmarkFig13(b *testing.B)    { runCase(b, "Fig13") }
func BenchmarkHeadline(b *testing.B) { runCase(b, "Headline") }

// BenchmarkSimulateNEOFog measures the system simulator's throughput on
// the standard 10-node, 5-hour deployment.
func BenchmarkSimulateNEOFog(b *testing.B) { runCase(b, "SimulateNEOFog") }

// BenchmarkSimulateTelemetry is the telemetry-enabled twin of
// BenchmarkSimulateNEOFog; the delta is the observability layer's cost.
func BenchmarkSimulateTelemetry(b *testing.B) { runCase(b, "SimulateTelemetry") }

// BenchmarkSimulateLargeFleet runs the 100-node inter-chain scale the
// paper's simulator targets (reduced rounds to keep the benchmark honest
// but bounded).
func BenchmarkSimulateLargeFleet(b *testing.B) { runCase(b, "SimulateLargeFleet") }

// BenchmarkFigPacketsFull is the full-length Fig. 10 regeneration (5
// profiles × 3 systems × 1500 rounds), for tracking the cost of the
// heaviest published artifact. Skipped under -short.
func BenchmarkFigPacketsFull(b *testing.B) { runCase(b, "FigPacketsFull") }

// BenchmarkServeScheduleBuild measures the serve load harness's
// deterministic schedule expansion (normalize + content-address per
// arrival) — the fixed cost the open-loop generator pays before a trace
// starts.
func BenchmarkServeScheduleBuild(b *testing.B) { runCase(b, "ServeScheduleBuild") }
