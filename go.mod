module neofog

go 1.24
